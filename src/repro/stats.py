"""Compatibility alias — the hot-path counters moved to ``repro.obs``.

``PipelineStats`` began life here as a standalone struct of process-wide
counters for the PR-1 fast paths.  The observability subsystem
(:mod:`repro.obs.metrics`) re-homed it onto the metrics registry, where
``metrics.snapshot()`` exposes the same counters as ``pipeline.*``
alongside the tracer's latency histograms.  This module keeps the
original import surface working unchanged::

    from repro.stats import pipeline_stats, reset_pipeline_stats

Hot paths still bump ``pipeline_stats`` attributes directly (one integer
add; no indirection) — the registry reads them through a collector.

Importing this module emits a :class:`DeprecationWarning`: new code
should import from :mod:`repro.obs.metrics` directly.  The alias will be
kept for at least one more release.
"""

from __future__ import annotations

import warnings

from .obs.metrics import PipelineStats, pipeline_stats, reset_pipeline_stats

__all__ = ["PipelineStats", "pipeline_stats", "reset_pipeline_stats"]

warnings.warn(
    "repro.stats is deprecated; import PipelineStats/pipeline_stats/"
    "reset_pipeline_stats from repro.obs.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)
