"""Hot-path instrumentation shared by the event pipeline and the OODB.

The optimizations this package layers onto the paper's design — the
consumer-snapshot cache on reactive objects, the serializer's scalar fast
path, and WAL group commit — are invisible when they work.
:class:`PipelineStats` makes them observable: the benchmarks (and the
invalidation tests) assert against these counters to prove the fast paths
actually engage instead of silently falling back.

The module lives at the package root because both ``repro.core`` and
``repro.oodb`` feed it, and ``repro.oodb`` must not import ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["PipelineStats", "pipeline_stats", "reset_pipeline_stats"]


@dataclass(slots=True)
class PipelineStats:
    """Process-wide counters for the optimized hot paths."""

    #: consumer-snapshot cache on Reactive instances
    consumer_cache_hits: int = 0
    consumer_cache_misses: int = 0
    consumer_cache_invalidations: int = 0
    #: serializer: objects whose attributes were all plain scalars
    serializer_fast_objects: int = 0
    serializer_slow_objects: int = 0
    #: WAL group commit
    group_commits: int = 0
    group_commit_records: int = 0
    wal_syncs: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The process-wide instance.  Hot paths bump attributes on it directly
#: (one integer add; no indirection) rather than going through a function.
pipeline_stats = PipelineStats()


def reset_pipeline_stats() -> PipelineStats:
    """Zero every counter (benchmark/test setup) and return the instance."""
    pipeline_stats.reset()
    return pipeline_stats
