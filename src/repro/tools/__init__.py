"""Operational tooling: database inspection and statistics."""

from .inspect import DatabaseSummary, summarize

__all__ = ["summarize", "DatabaseSummary"]
