"""Operational tooling: inspection, audit queries, live metrics views.

Each module doubles as a CLI entry point::

    python -m repro.tools.inspect DBDIR [--rules|--stats|--oid N]
    python -m repro.tools.trace   TRACE.jsonl
    python -m repro.tools.audit   AUDIT.jsonl [--rule R] [--summary] ...
    python -m repro.tools.top     http://HOST:PORT [--interval S]
"""

from .inspect import DatabaseSummary, summarize

__all__ = ["summarize", "DatabaseSummary"]
