"""Statically analyze a Sentinel rule base from the command line.

Usage::

    python -m repro.tools.analyze app.py                 # text report
    python -m repro.tools.analyze app.py --fail-on error # CI gate
    python -m repro.tools.analyze app.py --sarif out.sarif
    python -m repro.tools.analyze app.py --graph out.dot
    python -m repro.tools.analyze some.module --json

``app.py`` (or the dotted module) must expose a ``build_system()``
function returning either a :class:`~repro.core.system.Sentinel` or any
object with a ``sentinel`` attribute — the convention every
``examples/*.py`` follows.  The target module is imported (so its
classes and rules come to life) but **nothing is executed beyond that**:
the analyzer inspects the rule base without firing a single rule.

Exit status: 0 — findings below the ``--fail-on`` threshold (default
``error``); 1 — at least one finding at/above the threshold; 2 — the
target could not be loaded or exposes no usable system.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import sys
from pathlib import Path
from typing import Any

from ..analysis import AnalysisReport, analyze

__all__ = ["load_system", "system_from_module", "main"]


class TargetError(Exception):
    """The analysis target could not be loaded."""


def load_system(target: str) -> Any:
    """Import ``target`` (a ``.py`` path or dotted module) and build its
    system via the ``build_system()`` convention."""
    return system_from_module(_import_target(target), target)


def system_from_module(module: Any, target: str) -> Any:
    """Build the system from an already-imported target module.

    Split out of :func:`load_system` so callers that also need the
    module itself (``repro.tools.doctor`` looks for an optional
    ``exercise()`` hook next to ``build_system()``) import it once.
    """
    builder = getattr(module, "build_system", None)
    if builder is None or not callable(builder):
        raise TargetError(
            f"{target!r} defines no build_system() function; the analyzer "
            "needs one returning a Sentinel (or an object with a "
            ".sentinel attribute)"
        )
    built = builder()
    system = getattr(built, "sentinel", built)
    if not hasattr(system, "rules"):
        raise TargetError(
            f"build_system() in {target!r} returned {type(built).__name__}, "
            "which has no rule base (expected a Sentinel or an object "
            "with a .sentinel attribute)"
        )
    return system


def _import_target(target: str) -> Any:
    path = Path(target)
    if path.suffix == ".py" or path.exists():
        if not path.exists():
            raise TargetError(f"no such file: {target}")
        name = f"_repro_analyze_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:
            raise TargetError(f"cannot load {target!r} as a module")
        module = importlib.util.module_from_spec(spec)
        # Registered so dataclasses/pickling inside the target resolve.
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as exc:
            raise TargetError(f"importing {target!r} failed: {exc!r}") from exc
        return module
    try:
        return importlib.import_module(target)
    except Exception as exc:
        raise TargetError(f"importing {target!r} failed: {exc!r}") from exc


def _write(path: str, content: str) -> None:
    Path(path).write_text(content, encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.analyze",
        description="Static rule-set analyzer: triggering graph, "
        "termination/confluence/dead-rule/signature findings.",
    )
    parser.add_argument(
        "target",
        help="a .py file or dotted module exposing build_system()",
    )
    parser.add_argument(
        "--fail-on",
        choices=["note", "warning", "error", "never"],
        default="error",
        help="exit 1 when a finding at/above this severity exists "
        "(default: error)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the findings as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--graph",
        metavar="PATH",
        help="also write the triggering graph as Graphviz DOT to PATH",
    )
    args = parser.parse_args(argv)

    try:
        system = load_system(args.target)
    except TargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report: AnalysisReport = analyze(system)

    if args.json:
        sys.stdout.write(report.to_json_text())
    else:
        sys.stdout.write(report.to_text())
    if args.sarif:
        _write(args.sarif, report.to_sarif_text())
    if args.graph:
        _write(args.graph, report.to_dot())

    return 1 if report.should_fail(args.fail_on) else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
