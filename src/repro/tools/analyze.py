"""Statically analyze a Sentinel rule base from the command line.

Usage::

    python -m repro.tools.analyze app.py                 # text report
    python -m repro.tools.analyze app.py --fail-on error # CI gate
    python -m repro.tools.analyze app.py --sarif out.sarif
    python -m repro.tools.analyze app.py --graph out.dot
    python -m repro.tools.analyze some.module --json
    python -m repro.tools.analyze app.py --concurrency   # + SA1xx family
    python -m repro.tools.analyze app.py --baseline known.json
    python -m repro.tools.analyze app.py --baseline known.json --write-baseline
    python -m repro.tools.analyze app.py --concurrency --lockdep-graph obs.json

**Ratchet mode** (``--baseline FILE``): findings whose fingerprint
(code, rule, message) appears in FILE are *suppressed* — not printed,
not counted against ``--fail-on`` — so a new analysis family can land
warning-level on an existing rule base and CI still fails only on *new*
findings.  ``--write-baseline`` records the current findings into FILE
(creating it) and exits 0.

**Cross-validation** (``--lockdep-graph FILE``): FILE is the runtime
lock-order recorder's exported graph
(:meth:`repro.oodb.lockdep.LockOrderRecorder.export`).  Every observed
inversion pair is checked against the static SA101 order relation; the
verdict is printed per pair.  Implies ``--concurrency``.

``app.py`` (or the dotted module) must expose a ``build_system()``
function returning either a :class:`~repro.core.system.Sentinel` or any
object with a ``sentinel`` attribute — the convention every
``examples/*.py`` follows.  The target module is imported (so its
classes and rules come to life) but **nothing is executed beyond that**:
the analyzer inspects the rule base without firing a single rule.
Modules that register their classes in a private
:class:`~repro.oodb.schema.ClassRegistry` expose it as a module-level
``registry``; otherwise the system's database registry (then the
process-wide one) resolves class families.

Exit status: 0 — findings below the ``--fail-on`` threshold (default
``error``); 1 — at least one finding at/above the threshold; 2 — the
target could not be loaded or exposes no usable system.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import sys
from pathlib import Path
from typing import Any

from ..analysis import (
    AnalysisReport,
    Finding,
    analyze,
    static_order_edges,
)

__all__ = [
    "load_system",
    "system_from_module",
    "registry_for",
    "finding_fingerprint",
    "main",
]


class TargetError(Exception):
    """The analysis target could not be loaded."""


def load_system(target: str) -> Any:
    """Import ``target`` (a ``.py`` path or dotted module) and build its
    system via the ``build_system()`` convention."""
    return system_from_module(_import_target(target), target)


def system_from_module(module: Any, target: str) -> Any:
    """Build the system from an already-imported target module.

    Split out of :func:`load_system` so callers that also need the
    module itself (``repro.tools.doctor`` looks for an optional
    ``exercise()`` hook next to ``build_system()``) import it once.
    """
    builder = getattr(module, "build_system", None)
    if builder is None or not callable(builder):
        raise TargetError(
            f"{target!r} defines no build_system() function; the analyzer "
            "needs one returning a Sentinel (or an object with a "
            ".sentinel attribute)"
        )
    built = builder()
    system = getattr(built, "sentinel", built)
    if not hasattr(system, "rules"):
        raise TargetError(
            f"build_system() in {target!r} returned {type(built).__name__}, "
            "which has no rule base (expected a Sentinel or an object "
            "with a .sentinel attribute)"
        )
    return system


def registry_for(module: Any, system: Any) -> Any:
    """The class registry to resolve families with for ``module``.

    A module-level ``registry`` wins (modules that isolate their classes
    in a private :class:`ClassRegistry` export it under that name), then
    the system database's registry; ``None`` means the process-wide one.
    """
    registry = getattr(module, "registry", None)
    if registry is not None:
        return registry
    return getattr(getattr(system, "db", None), "registry", None)


def _import_target(target: str) -> Any:
    path = Path(target)
    if path.suffix == ".py" or path.exists():
        if not path.exists():
            raise TargetError(f"no such file: {target}")
        name = f"_repro_analyze_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:
            raise TargetError(f"cannot load {target!r} as a module")
        module = importlib.util.module_from_spec(spec)
        # Registered so dataclasses/pickling inside the target resolve.
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as exc:
            raise TargetError(f"importing {target!r} failed: {exc!r}") from exc
        return module
    try:
        return importlib.import_module(target)
    except Exception as exc:
        raise TargetError(f"importing {target!r} failed: {exc!r}") from exc


def _write(path: str, content: str) -> None:
    Path(path).write_text(content, encoding="utf-8")


# ----------------------------------------------------------------------
# Ratchet mode (--baseline)
# ----------------------------------------------------------------------

def finding_fingerprint(finding: Finding) -> str:
    """A machine-stable identity for one finding.

    Deliberately excludes file paths and line numbers so a baseline
    recorded on one checkout keeps matching on another.
    """
    return f"{finding.code}|{finding.rule or ''}|{finding.message}"


def _load_baseline(path: str) -> set[str]:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    fingerprints = data.get("fingerprints", [])
    return {str(fp) for fp in fingerprints}


def _write_baseline(path: str, report: AnalysisReport) -> None:
    data = {
        "fingerprints": sorted(
            {finding_fingerprint(f) for f in report.findings}
        ),
    }
    _write(path, json.dumps(data, indent=2) + "\n")


# ----------------------------------------------------------------------
# Lockdep cross-validation (--lockdep-graph)
# ----------------------------------------------------------------------

def _cross_validate_lockdep(
    report: AnalysisReport, path: str, registry: Any = None
) -> list[str]:
    """Compare the recorder's observed graph against static SA101 edges.

    Returns printable verdict lines: one per observed inversion pair,
    saying whether the static order relation predicted both directions.
    """
    observed = json.loads(Path(path).read_text(encoding="utf-8"))
    if report.graph is None:  # pragma: no cover - defensive
        return ["lockdep cross-validation: no triggering graph available"]
    static = {
        (a.lower(), b.lower())
        for a, b in static_order_edges(report.graph, registry)
    }
    inversions = observed.get("inversions", [])
    lines = [
        f"lockdep cross-validation: {len(inversions)} observed inversion "
        f"pair(s), {len(static)} static order edge(s)"
    ]
    for inversion in inversions:
        first = str(inversion.get("first", "")).lower()
        second = str(inversion.get("second", "")).lower()
        covered = (first, second) in static and (second, first) in static
        verdict = (
            "covered by static SA101 order edges"
            if covered
            else "NOT predicted statically (rule base incomplete or "
            "transaction code outside the rules)"
        )
        lines.append(f"  {first} <-> {second}: {verdict}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.analyze",
        description="Static rule-set analyzer: triggering graph, "
        "termination/confluence/dead-rule/signature findings.",
    )
    parser.add_argument(
        "target",
        help="a .py file or dotted module exposing build_system()",
    )
    parser.add_argument(
        "--fail-on",
        choices=["note", "warning", "error", "never"],
        default="error",
        help="exit 1 when a finding at/above this severity exists "
        "(default: error)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the findings as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--graph",
        metavar="PATH",
        help="also write the triggering graph as Graphviz DOT to PATH",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the SA1xx concurrency-hazard checks",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="ratchet mode: suppress findings already recorded in PATH",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--lockdep-graph",
        metavar="PATH",
        help="cross-validate a runtime lock-order recorder export "
        "against the static order edges (implies --concurrency)",
    )
    args = parser.parse_args(argv)

    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline PATH")

    try:
        module = _import_target(args.target)
        system = system_from_module(module, args.target)
    except TargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = registry_for(module, system)

    concurrency = args.concurrency or bool(args.lockdep_graph)
    report: AnalysisReport = analyze(
        system, registry=registry, concurrency=concurrency
    )

    if args.write_baseline:
        _write_baseline(args.baseline, report)
        print(
            f"baseline written: {len(report.findings)} finding(s) -> "
            f"{args.baseline}"
        )
        return 0

    suppressed = 0
    if args.baseline:
        known = _load_baseline(args.baseline)
        kept = [
            f for f in report.findings if finding_fingerprint(f) not in known
        ]
        suppressed = len(report.findings) - len(kept)
        report = AnalysisReport(findings=kept, graph=report.graph)

    if args.json:
        sys.stdout.write(report.to_json_text())
    else:
        sys.stdout.write(report.to_text())
    if suppressed and not args.json:
        print(f"{suppressed} baselined finding(s) suppressed")
    if args.sarif:
        _write(args.sarif, report.to_sarif_text())
    if args.graph:
        _write(args.graph, report.to_dot())
    if args.lockdep_graph:
        try:
            for line in _cross_validate_lockdep(
                report, args.lockdep_graph, registry
            ):
                print(line)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: reading {args.lockdep_graph!r}: {exc}", file=sys.stderr)
            return 2

    return 1 if report.should_fail(args.fail_on) else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
