"""Query the rule-firing audit trail from the command line.

Usage::

    python -m repro.tools.audit /path/to/audit.jsonl                 # all
    python -m repro.tools.audit audit.jsonl --rule guard             # filter
    python -m repro.tools.audit audit.jsonl --outcome error          # filter
    python -m repro.tools.audit audit.jsonl --since 2026-08-05T14:00
    python -m repro.tools.audit audit.jsonl --tail 20                # newest
    python -m repro.tools.audit audit.jsonl --summary                # per-rule

Reads the JSONL trail written by :mod:`repro.obs.audit` (rotated
generations included, oldest first; ``--no-rotated`` restricts to the
active file).  Timestamps for ``--since``/``--until`` accept epoch
seconds or ISO-8601 (interpreted in local time).
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime
from typing import Any, Iterable, Iterator

from ..obs.audit import OUTCOMES, read_entries, tail_entries

__all__ = ["filter_entries", "render_entry", "render_summary", "main"]


def parse_when(text: str) -> float:
    """``--since``/``--until`` value → epoch seconds."""
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError:
        raise SystemExit(
            f"unrecognized time {text!r}; use epoch seconds or ISO-8601"
        ) from None


def filter_entries(
    entries: Iterable[dict[str, Any]],
    rule: str | None = None,
    outcome: str | None = None,
    since: float | None = None,
    until: float | None = None,
) -> Iterator[dict[str, Any]]:
    for entry in entries:
        if rule is not None and entry.get("rule") != rule:
            continue
        if outcome is not None and entry.get("outcome") != outcome:
            continue
        ts = entry.get("ts", 0.0)
        if since is not None and ts < since:
            continue
        if until is not None and ts > until:
            continue
        yield entry


def render_entry(entry: dict[str, Any]) -> str:
    when = datetime.fromtimestamp(entry.get("ts", 0.0)).isoformat(
        sep=" ", timespec="milliseconds"
    )
    line = (
        f"{when}  seq={entry.get('seq'):<6} {entry.get('rule'):<24} "
        f"{entry.get('coupling'):<9} {entry.get('outcome'):<8} "
        f"{entry.get('latency_us', 0.0):>8.1f}µs"
    )
    error = entry.get("error")
    if error:
        line += f"  {error}"
    return line


def render_summary(entries: Iterable[dict[str, Any]]) -> str:
    """Per-rule firing counts by outcome, with mean/max latency."""
    per_rule: dict[str, dict[str, Any]] = {}
    for entry in entries:
        stats = per_rule.setdefault(
            entry.get("rule", "?"),
            {"total": 0, "latency_sum": 0.0, "latency_max": 0.0,
             **{outcome: 0 for outcome in OUTCOMES}},
        )
        stats["total"] += 1
        outcome = entry.get("outcome")
        if outcome in stats:
            stats[outcome] += 1
        latency = entry.get("latency_us", 0.0) or 0.0
        stats["latency_sum"] += latency
        stats["latency_max"] = max(stats["latency_max"], latency)
    if not per_rule:
        return "no entries"
    header = (
        f"{'rule':<24} {'total':>6} {'fired':>6} {'reject':>6} "
        f"{'error':>6} {'abort':>6} {'mean µs':>9} {'max µs':>9}"
    )
    lines = [header]
    for name in sorted(per_rule):
        stats = per_rule[name]
        mean = stats["latency_sum"] / stats["total"] if stats["total"] else 0.0
        lines.append(
            f"{name:<24} {stats['total']:>6} {stats['fired']:>6} "
            f"{stats['rejected']:>6} {stats['error']:>6} "
            f"{stats['aborted']:>6} {mean:>9.1f} {stats['latency_max']:>9.1f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.audit",
        description="Query the Sentinel rule-firing audit trail.",
    )
    parser.add_argument("path", help="audit log path (the active JSONL file)")
    parser.add_argument("--rule", default=None, help="only this rule")
    parser.add_argument(
        "--outcome", default=None, choices=OUTCOMES,
        help="only firings with this outcome",
    )
    parser.add_argument(
        "--since", default=None,
        help="only entries at/after this time (epoch or ISO-8601)",
    )
    parser.add_argument(
        "--until", default=None,
        help="only entries at/before this time (epoch or ISO-8601)",
    )
    parser.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="show only the newest N matching entries",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="per-rule outcome counts and latency instead of entries",
    )
    parser.add_argument(
        "--no-rotated", action="store_true",
        help="read only the active file, not rotated generations",
    )
    args = parser.parse_args(argv)

    filters_active = any(
        value is not None
        for value in (args.rule, args.outcome, args.since, args.until)
    )
    if args.tail is not None and not args.summary and not filters_active:
        # Unfiltered tail: walk generations newest-first (the active file,
        # then .1, .2, ...) and stop as soon as N entries are collected —
        # a tail that spans a rotation boundary never reads older
        # generations it does not need.
        entries: Iterable[dict[str, Any]] = tail_entries(
            args.path, args.tail, include_rotated=not args.no_rotated
        )
    else:
        entries = filter_entries(
            read_entries(args.path, include_rotated=not args.no_rotated),
            rule=args.rule,
            outcome=args.outcome,
            since=parse_when(args.since) if args.since else None,
            until=parse_when(args.until) if args.until else None,
        )
        if args.summary:
            print(render_summary(entries))
            return 0
        if args.tail is not None:
            entries = list(entries)[-args.tail :]
    count = 0
    for entry in entries:
        print(render_entry(entry))
        count += 1
    if not count:
        print("no entries")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
