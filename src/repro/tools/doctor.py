"""One-shot diagnostics bundle for a Sentinel system.

Usage::

    python -m repro.tools.doctor app.py                  # markdown to stdout
    python -m repro.tools.doctor app.py --out bundle/    # directory bundle
    python -m repro.tools.doctor app.py --json doctor.json
    python -m repro.tools.doctor some.module --slow-tail 100

``app.py`` (or the dotted module) must expose ``build_system()`` — the
same convention as ``repro.tools.analyze``.  If the module also defines
``exercise(sentinel)``, the doctor calls it before collecting, so the
bundle reflects a real workload (induce the slow query you want
diagnosed there); ``--no-exercise`` skips it.

The bundle gathers, in one place, everything the other observability
surfaces expose separately:

* **health** — the ``/healthz`` checks (WAL writability, error rate,
  scheduler depth, recovery state) without needing the HTTP server;
* **metrics** — the full registry snapshot (``/vars`` equivalent);
* **flight** — the always-on flight recorder ring and any retained
  crash dumps;
* **slow_ops** — the newest entries of the slow-op log, thresholds
  included;
* **locks** — lock-table counts (held/waiting) plus, when the
  lock-order sanitizer is attached, the order-graph edge count and
  recent inversion warnings;
* **telemetry** — when continuous telemetry is on, the last few minutes
  of every recorded series from the on-disk store plus current SLO
  statuses (``--telemetry-window`` sets the span);
* **storage** — the ``inspect --stats`` report for the live database;
* **analysis** — the static rule-set findings (triggering graph,
  termination/confluence/dead-rule checks).

``--out DIR`` writes the bundle as a directory (``doctor.json``,
``doctor.md``, ``flight.jsonl``, ``slow_ops.jsonl``); ``--json FILE``
writes a single JSON file with the markdown summary embedded; neither
prints the markdown summary to stdout.  :func:`validate_bundle` is the
schema gate CI runs against the produced bundle.

Exit status: 0 — bundle produced; 2 — the target could not be loaded.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from ..analysis import analyze
from ..obs.audit import tail_entries
from ..obs.exporter import _json_safe, build_checks, run_checks
from ..obs.flight import flight_recorder
from ..obs.metrics import metrics
from ..obs.slowlog import DEFAULT_THRESHOLDS, slow_op_log
from .analyze import TargetError, _import_target, system_from_module
from .inspect import storage_stats_lines

__all__ = [
    "collect",
    "render_markdown",
    "validate_bundle",
    "write_bundle",
    "main",
]

#: Required top-level bundle keys and their types (the CI schema gate).
BUNDLE_SCHEMA: dict[str, type] = {
    "generated_at": float,
    "target": str,
    "health": dict,
    "system": dict,
    "metrics": dict,
    "flight": dict,
    "slow_ops": dict,
    "locks": dict,
    "telemetry": dict,
    "storage": list,
    "analysis": dict,
}


def collect(
    sentinel: Any,
    target: str = "",
    slow_tail: int = 50,
    telemetry_window_s: float = 300.0,
) -> dict[str, Any]:
    """Gather the full diagnostics bundle from a live system."""
    health = run_checks(build_checks(sentinel))
    snapshot = metrics.snapshot()
    bundle: dict[str, Any] = {
        "generated_at": time.time(),
        "target": target,
        "health": health,
        "system": sentinel.stats(),
        "metrics": {
            name: _json_safe(value) for name, value in sorted(snapshot.items())
        },
        "flight": {
            "enabled": flight_recorder.enabled,
            "capacity": flight_recorder.capacity,
            "recorded": flight_recorder.recorded,
            "entries": flight_recorder.snapshot(),
            "dumps": flight_recorder.snapshot_dumps(),
        },
        "slow_ops": _slow_ops(slow_tail),
        "locks": _locks(sentinel),
        "telemetry": _telemetry(telemetry_window_s),
        "storage": (
            storage_stats_lines(sentinel.db)
            if sentinel.db is not None
            else ["no database attached"]
        ),
        "analysis": analyze(sentinel).to_json(),
    }
    return bundle


def _telemetry(window_s: float) -> dict[str, Any]:
    from ..obs.tsdb import telemetry

    store = telemetry.store
    collector = telemetry.collector
    if store is None or collector is None:
        return {"enabled": False}
    newest = store.last_scrape_ts()
    start = (newest - window_s) if newest is not None else None
    samples: dict[str, list[list[float]]] = {}
    for name in store.series():
        samples[name] = [
            [ts, value] for ts, value in store.query(name, start=start)
        ]
    return {
        "enabled": True,
        "dir": store.directory,
        "interval_s": collector.interval,
        "window_s": window_s,
        "scrapes": collector.scrapes,
        "scrape_errors": collector.scrape_errors,
        "series": store.series(),
        "samples": samples,
        "slos": [status.as_dict() for status in collector.slo_statuses()],
    }


def _locks(sentinel: Any) -> dict[str, Any]:
    db = getattr(sentinel, "db", None)
    if db is None:
        return {"enabled": False}
    data: dict[str, Any] = {"enabled": bool(db.locking)}
    data.update(db.locks.stats())
    data["waiting_edges"] = {
        str(waiter): sorted(blockers)
        for waiter, blockers in db.locks.waiting_edges().items()
    }
    recorder = db.locks.lockdep
    if recorder is None:
        data["lockdep"] = {"enabled": False}
    else:
        data["lockdep"] = {
            "enabled": True,
            **recorder.stats(),
            "recent_inversions": recorder.inversions()[-10:],
        }
    return data


def _slow_ops(slow_tail: int) -> dict[str, Any]:
    entries: list[dict[str, Any]] = []
    if slow_op_log.enabled and slow_op_log.path:
        entries = tail_entries(slow_op_log.path, slow_tail)
    return {
        "enabled": slow_op_log.enabled,
        "path": slow_op_log.path,
        "thresholds": {
            name: getattr(slow_op_log, name) for name in DEFAULT_THRESHOLDS
        },
        "entries": entries,
    }


def validate_bundle(bundle: dict[str, Any]) -> None:
    """Check the bundle against :data:`BUNDLE_SCHEMA`; raise on problems.

    All problems are collected into one :class:`ValueError`, so a CI
    failure names everything wrong at once.
    """
    problems: list[str] = []
    for key, expected in BUNDLE_SCHEMA.items():
        if key not in bundle:
            problems.append(f"missing key {key!r}")
        elif not isinstance(bundle[key], expected):
            problems.append(
                f"{key!r} should be {expected.__name__}, "
                f"got {type(bundle[key]).__name__}"
            )
    health = bundle.get("health")
    if isinstance(health, dict):
        if health.get("status") not in ("ok", "degraded"):
            problems.append(f"health.status invalid: {health.get('status')!r}")
        if not isinstance(health.get("checks"), dict):
            problems.append("health.checks should be a dict")
    flight = bundle.get("flight")
    if isinstance(flight, dict):
        for entry in flight.get("entries", []):
            missing = {"ts", "kind", "name", "value", "detail"} - set(entry)
            if missing:
                problems.append(f"flight entry missing {sorted(missing)}")
                break
    slow = bundle.get("slow_ops")
    if isinstance(slow, dict):
        for entry in slow.get("entries", []):
            missing = {"ts", "kind", "duration_us", "threshold_us"} - set(entry)
            if missing:
                problems.append(f"slow_ops entry missing {sorted(missing)}")
                break
    locks = bundle.get("locks")
    if isinstance(locks, dict):
        if "enabled" not in locks:
            problems.append("locks missing 'enabled'")
        elif locks.get("enabled") or "locked_oids" in locks:
            for key in ("locked_oids", "held_locks", "waiting_txns"):
                if not isinstance(locks.get(key), int):
                    problems.append(f"locks.{key} should be int")
            lockdep = locks.get("lockdep")
            if not isinstance(lockdep, dict) or "enabled" not in lockdep:
                problems.append("locks.lockdep should be a dict with 'enabled'")
            elif lockdep.get("enabled"):
                if not isinstance(lockdep.get("order_edges"), int):
                    problems.append("locks.lockdep.order_edges should be int")
                if not isinstance(lockdep.get("recent_inversions"), list):
                    problems.append(
                        "locks.lockdep.recent_inversions should be a list"
                    )
    analysis = bundle.get("analysis")
    if isinstance(analysis, dict):
        if "findings" not in analysis or "counts" not in analysis:
            problems.append("analysis missing findings/counts")
    if problems:
        raise ValueError("invalid doctor bundle: " + "; ".join(problems))


def render_markdown(bundle: dict[str, Any]) -> str:
    """A human-readable summary of the bundle."""
    when = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(bundle["generated_at"])
    )
    health = bundle["health"]
    lines = [
        f"# Sentinel doctor — {bundle['target'] or 'live system'}",
        "",
        f"Generated {when}; overall status **{health['status']}**.",
        "",
        "## Health checks",
        "",
    ]
    for name, check in sorted(health["checks"].items()):
        ok = check.get("ok")
        marker = "ok" if ok else "FAIL"
        lines.append(f"- `{name}`: {marker} — {check.get('detail', '')}")

    system = bundle["system"]
    lines += [
        "",
        "## System",
        "",
        f"- rules: {system.get('rules', 0)}, events: {system.get('events', 0)}",
        f"- triggered {system.get('triggered', 0)}, "
        f"executed {system.get('executed', 0)}, fired {system.get('fired', 0)}",
        f"- transactions: {system.get('transactions_committed', 0)} committed, "
        f"{system.get('transactions_aborted', 0)} aborted",
    ]

    flight = bundle["flight"]
    lines += [
        "",
        "## Flight recorder",
        "",
        f"- {'on' if flight['enabled'] else 'OFF'}, "
        f"{len(flight['entries'])}/{flight['capacity']} entries held, "
        f"{flight['recorded']} recorded total, "
        f"{len(flight['dumps'])} auto-dumps retained",
    ]
    for dump in flight["dumps"][-3:]:
        lines.append(
            f"- dump `{dump['reason']}`: {dump.get('error', '')} "
            f"({len(dump['entries'])} entries)"
        )
    for entry in flight["entries"][-10:]:
        lines.append(
            f"  - {entry['kind']:<7} {entry['name']} "
            f"value={entry['value']} {entry['detail']}"
        )

    slow = bundle["slow_ops"]
    lines += ["", "## Slow operations", ""]
    if not slow["enabled"]:
        lines.append(
            "- slow-op log not enabled (Sentinel.enable_slow_log to capture "
            "threshold breaches)"
        )
    elif not slow["entries"]:
        lines.append(f"- no breaches logged at {slow['path']}")
    else:
        lines.append(
            f"- newest {len(slow['entries'])} breaches from {slow['path']}:"
        )
        for entry in slow["entries"][-10:]:
            what = entry.get("rule") or entry.get("class") or entry.get(
                "path", entry.get("txn_id", "")
            )
            lines.append(
                f"  - {entry['kind']:<6} {entry['duration_us']:.0f}µs "
                f"(threshold {entry['threshold_us']:.0f}µs) {what}"
            )

    locks = bundle["locks"]
    lines += ["", "## Locks", ""]
    if "locked_oids" not in locks:
        lines.append("- no database attached")
    else:
        mode = "locking on" if locks.get("enabled") else "locking off"
        lines.append(
            f"- {mode}: {locks.get('locked_oids', 0)} locked OIDs, "
            f"{locks.get('held_locks', 0)} held locks across "
            f"{locks.get('holding_txns', 0)} txns, "
            f"{locks.get('waiting_txns', 0)} waiting"
        )
        lockdep = locks.get("lockdep", {})
        if not lockdep.get("enabled"):
            lines.append(
                "- lock-order sanitizer not attached "
                "(Sentinel.enable_lockdep to record acquisition order)"
            )
        else:
            lines.append(
                f"- lockdep: {lockdep.get('order_edges', 0)} order edges, "
                f"{lockdep.get('inversions', 0)} inversion(s) reported"
            )
            for inversion in lockdep.get("recent_inversions", [])[-5:]:
                lines.append(
                    f"  - {inversion.get('first')} <-> "
                    f"{inversion.get('second')} (txn {inversion.get('txn')})"
                )

    telemetry = bundle["telemetry"]
    lines += ["", "## Telemetry", ""]
    if not telemetry.get("enabled"):
        lines.append(
            "- continuous telemetry not enabled "
            "(Sentinel.enable_telemetry to record history)"
        )
    else:
        lines.append(
            f"- store {telemetry['dir']}, scraping every "
            f"{telemetry['interval_s']:g}s: {telemetry['scrapes']} scrapes, "
            f"{telemetry['scrape_errors']} errors, "
            f"{len(telemetry['series'])} series over the last "
            f"{telemetry['window_s']:g}s"
        )
        slos = telemetry.get("slos", [])
        if not slos:
            lines.append("- no SLOs configured")
        for status in slos:
            marker = "BREACHED" if status.get("breached") else "ok"
            lines.append(
                f"- SLO `{status.get('name')}`: {marker} — "
                f"value {status.get('value', 0):g} vs target "
                f"{status.get('target', 0):g} "
                f"(worst burn {status.get('worst_burn', 0):.1f}x)"
            )

    lines += ["", "## Storage", "", "```"]
    lines.extend(bundle["storage"])
    lines += ["```"]

    analysis = bundle["analysis"]
    counts = analysis.get("counts", {})
    lines += [
        "",
        "## Rule-set analysis",
        "",
        f"- {len(analysis.get('rules', []))} rules, "
        f"{len(analysis.get('edges', []))} triggering edges; "
        f"{counts.get('error', 0)} errors, {counts.get('warning', 0)} "
        f"warnings, {counts.get('note', 0)} notes",
    ]
    for finding in analysis.get("findings", [])[:10]:
        lines.append(
            f"- {finding.get('code')} {finding.get('severity')}: "
            f"{finding.get('message')}"
        )
    return "\n".join(lines) + "\n"


def write_bundle(bundle: dict[str, Any], out_dir: str) -> list[str]:
    """Write the bundle as a directory; returns the paths written."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    written: list[str] = []

    def _write(name: str, text: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        written.append(path)

    _write("doctor.json", json.dumps(bundle, indent=2, default=str) + "\n")
    _write("doctor.md", render_markdown(bundle))
    _write(
        "flight.jsonl",
        "".join(
            json.dumps(entry, default=str) + "\n"
            for entry in bundle["flight"]["entries"]
        ),
    )
    _write(
        "slow_ops.jsonl",
        "".join(
            json.dumps(entry, default=str) + "\n"
            for entry in bundle["slow_ops"]["entries"]
        ),
    )
    telemetry = bundle.get("telemetry", {})
    if telemetry.get("enabled"):
        _write(
            "telemetry.jsonl",
            "".join(
                json.dumps({"series": name, "samples": samples}) + "\n"
                for name, samples in telemetry.get("samples", {}).items()
            ),
        )
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.doctor",
        description="Produce a diagnostics bundle for a Sentinel system.",
    )
    parser.add_argument(
        "target",
        help="a .py path or dotted module exposing build_system() "
        "(and optionally exercise(sentinel))",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write the bundle as a directory",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the bundle as one JSON file (markdown summary embedded)",
    )
    parser.add_argument(
        "--slow-tail", type=int, default=50, metavar="N",
        help="newest N slow-op entries to include (default 50)",
    )
    parser.add_argument(
        "--no-exercise", action="store_true",
        help="skip the target's exercise(sentinel) hook",
    )
    parser.add_argument(
        "--telemetry-window", type=float, default=300.0, metavar="SECONDS",
        help="seconds of telemetry history to bundle (default 300)",
    )
    args = parser.parse_args(argv)

    try:
        module = _import_target(args.target)
        system = system_from_module(module, args.target)
    except TargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    exercise = getattr(module, "exercise", None)
    if exercise is not None and not args.no_exercise:
        try:
            with system:
                exercise(system)
        except Exception as exc:
            # An exercise that blows up is itself diagnostic material —
            # the flight recorder and slow-op log saw it happen.
            print(
                f"note: exercise() raised {exc!r} (captured in bundle)",
                file=sys.stderr,
            )

    bundle = collect(
        system,
        target=args.target,
        slow_tail=args.slow_tail,
        telemetry_window_s=args.telemetry_window,
    )
    validate_bundle(bundle)

    if args.out:
        for path in write_bundle(bundle, args.out):
            print(path)
    if args.json:
        bundle["summary_markdown"] = render_markdown(bundle)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, default=str)
            handle.write("\n")
        print(args.json)
    if not args.out and not args.json:
        print(render_markdown(bundle), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
