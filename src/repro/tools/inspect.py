"""Inspect a Sentinel database from the command line.

Usage::

    python -m repro.tools.inspect /path/to/dbdir           # summary
    python -m repro.tools.inspect /path/to/dbdir --rules   # + stored rules
    python -m repro.tools.inspect /path/to/dbdir --oid 17  # dump one object
    python -m repro.tools.inspect /path/to/dbdir --stats   # storage stats

The tool opens the database read-mostly (recovery runs if the WAL holds
committed work, exactly as a normal open would), prints a structural
summary — object counts per class, named roots, stored rules and events,
index definitions — and exits.  It never modifies user objects.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any

from ..core.events.base import Event
from ..core.rules import Rule
from ..oodb.database import Database
from ..oodb.oid import Oid
from ..oodb.storage.pages import PAGE_SIZE

__all__ = [
    "DatabaseSummary",
    "summarize",
    "storage_stats",
    "storage_stats_lines",
    "main",
]


@dataclass(slots=True)
class DatabaseSummary:
    """Structural snapshot of a database."""

    path: str
    object_count: int = 0
    classes: dict[str, int] = field(default_factory=dict)
    roots: dict[str, str] = field(default_factory=dict)
    rules: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    indexes: list[str] = field(default_factory=list)
    recovered: bool = False

    def render(self, show_rules: bool = False) -> str:
        lines = [f"database: {self.path}"]
        if self.recovered:
            lines.append("  (restart recovery replayed committed work)")
        lines.append(f"objects: {self.object_count}")
        for name in sorted(self.classes):
            lines.append(f"  {name:<28} {self.classes[name]}")
        lines.append(f"roots: {len(self.roots)}")
        for name in sorted(self.roots):
            lines.append(f"  {name:<28} {self.roots[name]}")
        lines.append(f"indexes: {len(self.indexes)}")
        for index in self.indexes:
            lines.append(f"  {index}")
        lines.append(f"stored rules: {len(self.rules)}")
        if show_rules:
            for rule in self.rules:
                lines.append(
                    f"  {rule['name']:<24} on {rule['event']:<32} "
                    f"{rule['coupling']} "
                    f"{'enabled' if rule['enabled'] else 'disabled'} "
                    f"(triggered {rule['triggered']}, fired {rule['fired']})"
                )
        lines.append(f"stored events: {len(self.events)}")
        if show_rules:
            for event in self.events:
                lines.append(
                    f"  {event['name']:<24} {event['type']:<14} "
                    f"signalled {event['signals']}×"
                )
        return "\n".join(lines)


def summarize(path: str) -> DatabaseSummary:
    """Open the database at ``path`` and collect a structural summary."""
    db = Database(path)
    try:
        summary = DatabaseSummary(
            path=path,
            object_count=db.object_count(),
            recovered=bool(db.last_recovery and not db.last_recovery.clean),
        )
        for class_name in db.extents.class_names():
            count = db.extents.count(class_name, include_subclasses=False)
            if count:
                summary.classes[class_name] = count
        for root_name in db.root_names():
            target = db.get_root(root_name)
            summary.roots[root_name] = (
                f"{type(target).__name__} {target.oid}"
                if target is not None and getattr(target, "oid", None)
                else repr(target)
            )
        summary.indexes = [d.display for d in db.indexes.definitions()]
        if "Rule" in db.registry:
            for rule in db.query(Rule):
                summary.rules.append(
                    {
                        "name": rule.name,
                        "event": getattr(rule.event, "name", "?"),
                        "coupling": rule.coupling.value,
                        "enabled": rule.enabled,
                        "triggered": rule.times_triggered,
                        "fired": rule.times_fired,
                    }
                )
        if "Event" in db.registry:
            for event in db.query(Event):
                summary.events.append(
                    {
                        "name": event.name,
                        "type": type(event).__name__,
                        "signals": event.signal_count,
                    }
                )
        return summary
    finally:
        db.close()


def _wal_stats(path: str) -> list[str]:
    """Summarize the WAL *before* the database is opened.

    Opening runs restart recovery, which checkpoints and truncates the
    log — reading after that would always report an empty WAL.  The read
    uses :func:`repro.oodb.storage.wal.read_records` (no write handle, no
    flush, no recovery), so inspecting a live or crashed database cannot
    disturb it.
    """
    import os

    from ..oodb.storage.wal import read_records

    wal_path = os.path.join(path, "wal.log")
    if not os.path.exists(wal_path):
        return ["wal: no log file"]
    by_type: dict[str, int] = {}
    total = 0
    for record in read_records(wal_path):
        total += 1
        by_type[record.type.value] = by_type.get(record.type.value, 0) + 1
    lines = [f"wal: {total} records, {os.path.getsize(wal_path)} bytes"]
    for name in sorted(by_type):
        lines.append(f"  {name:<12} {by_type[name]}")
    return lines


def storage_stats_lines(db: Database) -> list[str]:
    """Storage-layer statistics of a **live** database: heap page
    utilization, index sizes, record-format breakdown, read-path
    counters.

    Takes the already-open :class:`Database` so embedding callers
    (``repro.tools.doctor`` in particular) can report on the database
    they hold without opening a second handle on the same directory —
    a second open would run restart recovery underneath the live one.
    """
    lines: list[str] = []
    heap = getattr(db, "_heap", None)
    if heap is None:
        lines.append("heap: none (in-memory database)")
    else:
        pages = heap.page_count
        capacity = pages * PAGE_SIZE
        free = sum(heap._free_map.values())
        used = capacity - free
        utilization = (used / capacity * 100.0) if capacity else 0.0
        lines.append(
            f"heap: {pages} pages, {heap.record_count()} records, "
            f"{utilization:.1f}% utilized ({used}/{capacity} bytes)"
        )

    states = db.indexes._indexes
    lines.append(f"indexes: {len(states)}")
    for state in states.values():
        lines.append(
            f"  {state.definition.display:<28} "
            f"{len(state.keyed)} entries, "
            f"{state.tree.key_count} distinct keys"
            + (" (unique)" if state.definition.unique else "")
        )
        if state.kind == "hash":
            hs = state.tree.stats()
            lines.append(
                f"    directory {hs.directory_size} slots "
                f"(global depth {hs.global_depth}), "
                f"{hs.bucket_count} buckets × {hs.bucket_capacity}, "
                f"{hs.avg_bucket_fill:.0%} mean fill, "
                f"max {hs.max_bucket_keys} keys/bucket"
            )
    lines.extend(_codec_stats(db))
    lines.extend(_read_path_stats())
    return lines


def storage_stats(path: str) -> str:
    """Render the storage-layer statistics of the database at ``path``:
    WAL record counts by type, heap page utilization, index sizes."""
    lines = [f"database: {path}"]
    lines.extend(_wal_stats(path))
    db = Database(path)
    try:
        if db.last_recovery is not None and not db.last_recovery.clean:
            lines.append(
                "warning: opening for stats ran restart recovery "
                f"({db.last_recovery.redone_updates} updates replayed); "
                "the WAL counts above were read before it (read-only) — "
                "the log on disk is now truncated"
            )
        lines.extend(storage_stats_lines(db))
        return "\n".join(lines)
    finally:
        db.close()


def _codec_stats(db: Database) -> list[str]:
    """Per-class record-format breakdown from one heap scan.

    For every class: how many records are struct-packed vs legacy JSON,
    the mean stored payload size, and — for packed records — how many
    bytes the packed format saves versus re-encoding the same records as
    tagged JSON (the counterfactual each packed record avoided).
    """
    import json

    from ..oodb import codec
    from ..oodb.errors import OODBError

    heap = getattr(db, "_heap", None)
    if heap is None:
        return []
    per_class: dict[str, dict[str, int]] = {}
    for _rid, payload in heap.scan():
        _oid_value, class_name = codec.record_meta(payload)
        row = per_class.setdefault(
            class_name, {"packed": 0, "json": 0, "bytes": 0, "saved": 0}
        )
        row["bytes"] += len(payload)
        if not codec.is_packed(payload):
            row["json"] += 1
            continue
        row["packed"] += 1
        try:
            record = db.serializer.record_from_payload(payload)
        except OODBError:
            continue  # class not loadable here; count it, skip the diff
        twin = json.dumps(
            codec.jsonable_record(record),
            separators=(",", ":"),
            sort_keys=True,
        ).encode()
        row["saved"] += len(twin) - len(payload)
    lines = [f"record formats: {len(per_class)} classes"]
    for name in sorted(per_class):
        row = per_class[name]
        total = row["packed"] + row["json"]
        mean = row["bytes"] / total if total else 0.0
        line = (
            f"  {name:<28} {row['packed']} packed / {row['json']} json, "
            f"{mean:.0f} B/record"
        )
        if row["packed"]:
            line += f", {row['saved']} B saved vs json"
        lines.append(line)
    return lines


def _read_path_stats() -> list[str]:
    """Query-planner and buffer-pool counters from the metrics registry.

    Process-wide, so they cover whatever this process has executed —
    for the CLI that is the stats collection itself, but the function is
    also the one embedding applications call after a workload.
    """
    from ..obs.metrics import metrics

    snapshot = metrics.snapshot()
    lines = ["read path:"]
    executions = {
        name: value
        for name, value in sorted(snapshot.items())
        if name.startswith("query_executions{")
    }
    total = sum(executions.values())
    lines.append(f"  query executions: {total}")
    for name, value in executions.items():
        access_path = name[len("query_executions{access_path=") : -1]
        lines.append(f"    {access_path:<26} {value}")
    for label, key in (
        ("index hits", "index_hits"),
        ("index-only answers", "index_only_answers"),
        ("fetch_many page pins", "fetch_many_page_pins"),
    ):
        lines.append(f"  {label}: {snapshot.get(key, 0)}")
    hits = snapshot.get("buffer_pool.hits", 0)
    misses = snapshot.get("buffer_pool.misses", 0)
    hit_rate = snapshot.get("buffer_pool.hit_rate", 0.0)
    lines.append(
        f"  buffer pool: {hits} hits / {misses} misses "
        f"({hit_rate:.1%} hit rate), "
        f"{snapshot.get('buffer_pool.readahead_pages', 0)} readahead pages"
    )
    return lines


def dump_object(path: str, oid_value: int) -> str:
    """Render one stored object's record, reference edges included."""
    db = Database(path)
    try:
        record = db._stored_record(Oid(oid_value))
        if record is None:
            return f"no object with oid @{oid_value}"
        lines = [f"@{oid_value}  class={record['class']}"]
        for attr, value in sorted(record["attrs"].items()):
            lines.append(f"  {attr} = {value!r}")
        return "\n".join(lines)
    finally:
        db.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.inspect",
        description="Inspect a Sentinel object database.",
    )
    parser.add_argument("path", help="database directory")
    parser.add_argument(
        "--rules", action="store_true",
        help="list stored rules and events in detail",
    )
    parser.add_argument(
        "--oid", type=int, default=None,
        help="dump the record of one object by OID value",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print storage statistics (WAL, heap pages, indexes)",
    )
    args = parser.parse_args(argv)
    if args.oid is not None:
        print(dump_object(args.path, args.oid))
        return 0
    if args.stats:
        print(storage_stats(args.path))
        return 0
    print(summarize(args.path).render(show_rules=args.rules))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
