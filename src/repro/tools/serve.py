"""Run a Sentinel rule server over a database directory.

Usage::

    python -m repro.tools.serve /var/lib/appdb --port 8642 \\
        --import myapp.model --workers 4

Opens the store with locking enabled (clients are concurrent by
definition), wires a :class:`~repro.core.system.Sentinel` around it,
optionally imports application modules first — that is how the server
process learns the Persistent classes and the ECA rules that should fire
on client writes — and serves until interrupted.

``--workers N`` enables the decoupled-rule worker pool (0 disables it);
``--metrics-port`` additionally starts the observability exporter
(``/metrics``, ``/healthz``, ``/vars``) on its own port so the same
process exposes both the data plane and the ops plane.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.serve",
        description="Serve a Sentinel active database over HTTP/JSON.",
    )
    parser.add_argument("path", help="database directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--import",
        dest="imports",
        action="append",
        default=[],
        metavar="MODULE",
        help="import MODULE before serving (classes + rules); repeatable",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="decoupled-rule worker threads (0 disables the pool)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max outstanding decoupled jobs before inline fallback",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also start the observability exporter on this port",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="bind, print the URL, and exit (smoke-test mode)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    for name in args.imports:
        importlib.import_module(name)

    # Imports above may define class-level rules; create the system after
    # them so it adopts those rules onto its scheduler.
    from ..oodb.database import Database
    from ..core.system import Sentinel
    from ..server import RuleServer

    db = Database(args.path, locking=True)
    sentinel = Sentinel(db=db)
    if args.workers > 0:
        sentinel.enable_worker_pool(
            max_workers=args.workers, queue_limit=args.queue_limit
        )
    exporter = None
    if args.metrics_port is not None:
        exporter = sentinel.serve_metrics(host=args.host, port=args.metrics_port)
    server = RuleServer(sentinel, host=args.host, port=args.port).start()
    print(f"rule server listening on {server.url}", flush=True)
    if exporter is not None:
        print(f"metrics on {exporter.url}", flush=True)
    if args.once:
        server.stop()
        sentinel.close()
        return 0
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        sentinel.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
