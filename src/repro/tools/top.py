"""Live terminal view of rule firing rates and latencies.

Usage::

    python -m repro.tools.top http://127.0.0.1:9100            # live
    python -m repro.tools.top http://127.0.0.1:9100 --interval 5
    python -m repro.tools.top http://127.0.0.1:9100 --once     # one frame
    python -m repro.tools.top --history /var/lib/sentinel/tsdb # replay

Polls the ``/vars`` JSON endpoint of a running
:class:`repro.obs.exporter.ObservabilityServer` (a separate process
cannot read the in-process registry, so the exporter is the data path)
and renders:

* per-rule firing rates — deltas of the ``rule_firings{rule=…,outcome=…}``
  counters between polls.  The first frame is explicitly labeled as
  cumulative totals (there is no earlier poll to rate against); the
  ``Δ/s`` column only appears once two polls exist;
* pipeline latency p50/p95/p99 from every ``*_us`` histogram summary;
* a sparkline ``trend`` column per row once frames accumulate — the
  last dozen firing rates / p95 latencies at a glance.

``--history DIR`` replays frames from an on-disk telemetry store
(:mod:`repro.obs.tsdb`, written by ``Sentinel.enable_telemetry()``)
instead of polling a live exporter — the same dashboard over recorded
scrapes, usable after the process is gone.

``--iterations`` bounds the loop (0 = run until interrupted) and
``--once`` is shorthand for a single frame; the rendering is a pure
function of two snapshots plus a trend table, so tests drive it
directly.  When the exporter is unreachable the tool prints a one-line
notice and keeps retrying at the poll interval (``--once`` exits
non-zero instead).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from typing import Any, Deque
from urllib.request import urlopen

from ..obs.exporter import parse_metric_name

__all__ = [
    "fetch_vars",
    "render_top",
    "sparkline",
    "replay_frames",
    "main",
]

#: How many recent values the trend sparkline shows.
TREND_LEN = 12

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Trend-table keys: ``("rule", rule, outcome)`` or ``("hist", name)``.
TrendKey = tuple[str, ...]
Trends = dict[TrendKey, Deque[float]]


def fetch_vars(url: str, timeout: float = 5.0) -> dict[str, Any]:
    """GET ``<url>/vars`` and return the decoded snapshot."""
    with urlopen(url.rstrip("/") + "/vars", timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def sparkline(values: list[float], width: int = TREND_LEN) -> str:
    """The last ``width`` values as unicode blocks (scaled per row)."""
    tail = values[-width:]
    if not tail:
        return ""
    low = min(tail)
    high = max(tail)
    if high <= low:
        return _SPARK_BLOCKS[0] * len(tail)
    scale = (len(_SPARK_BLOCKS) - 1) / (high - low)
    return "".join(_SPARK_BLOCKS[int((v - low) * scale)] for v in tail)


def _firings(snapshot: dict[str, Any]) -> dict[tuple[str, str], int]:
    """``(rule, outcome) -> count`` from the labeled firing counters."""
    out: dict[tuple[str, str], int] = {}
    for name, value in snapshot.items():
        base, labels = parse_metric_name(name)
        if base == "rule_firings" and isinstance(value, (int, float)):
            key = (labels.get("rule", "?"), labels.get("outcome", "?"))
            out[key] = out.get(key, 0) + int(value)
    return out


def update_trends(
    trends: Trends,
    snapshot: dict[str, Any],
    previous: dict[str, Any] | None,
    elapsed: float,
) -> None:
    """Fold one poll into the trend table (rates and p95 latencies)."""
    if previous is not None and elapsed > 0.0:
        now = _firings(snapshot)
        before = _firings(previous)
        for key, count in now.items():
            rate = (count - before.get(key, 0)) / elapsed
            trends.setdefault(
                ("rule",) + key, deque(maxlen=TREND_LEN)
            ).append(rate)
    for name, value in snapshot.items():
        if name.endswith("_us") and isinstance(value, dict):
            trends.setdefault(
                ("hist", name), deque(maxlen=TREND_LEN)
            ).append(float(value.get("p95", 0.0)))


def render_top(
    snapshot: dict[str, Any],
    previous: dict[str, Any] | None = None,
    elapsed: float = 0.0,
    trends: Trends | None = None,
) -> str:
    """One frame: firing rates (vs ``previous``), latencies, trends.

    With no ``previous`` poll the firing table shows cumulative totals
    under an explicit label — a ``Δ/s`` column would be a lie on the
    first frame, so it only appears once two polls exist.
    """
    lines: list[str] = []
    now = _firings(snapshot)
    before = _firings(previous) if previous else {}
    rating = previous is not None and elapsed > 0.0
    trends = trends or {}

    def trend_of(key: TrendKey) -> str:
        return sparkline(list(trends.get(key, ())))

    if not rating:
        lines.append(
            "(first frame: cumulative totals since start — "
            "Δ/s appears after the next poll)"
        )
    unit = "Δ/s" if rating else "total"
    lines.append(f"{'rule':<24} {'outcome':<9} {unit:>10}  {'trend':<12}")
    rules = sorted({rule for rule, _ in now})
    for rule in rules:
        for (r, outcome), count in sorted(now.items()):
            if r != rule:
                continue
            if rating:
                delta = count - before.get((r, outcome), 0)
                value = f"{delta / elapsed:.1f}"
            else:
                value = str(count)
            trend = trend_of(("rule", r, outcome))
            lines.append(f"{rule:<24} {outcome:<9} {value:>10}  {trend:<12}")
    if not rules:
        lines.append("(no rule firings observed)")

    lines.append("")
    lines.append(
        f"{'latency':<24} {'count':>8} {'p50 µs':>9} {'p95 µs':>9} "
        f"{'p99 µs':>9}  {'trend':<12}"
    )
    histograms = 0
    for name in sorted(snapshot):
        value = snapshot[name]
        if not (name.endswith("_us") and isinstance(value, dict)):
            continue
        histograms += 1
        trend = trend_of(("hist", name))
        lines.append(
            f"{name:<24} {value.get('count', 0):>8} "
            f"{value.get('p50', 0.0):>9.1f} {value.get('p95', 0.0):>9.1f} "
            f"{value.get('p99', 0.0):>9.1f}  {trend:<12}"
        )
    if not histograms:
        lines.append("(no latency histograms; enable the tracer)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# --history: replay frames from an on-disk telemetry store
# ----------------------------------------------------------------------
def _unflatten(flat: dict[str, float]) -> dict[str, Any]:
    """A scraped frame back into ``/vars`` shape.

    The tsdb collector flattens histogram summaries into
    ``<name>.count`` / ``<name>.p95`` … sub-series; fold anything with a
    ``*_us.`` prefix back into a summary dict so :func:`render_top`
    treats recorded frames exactly like live ones.
    """
    out: dict[str, Any] = {}
    for name, value in flat.items():
        head, dot, leaf = name.rpartition(".")
        if dot and head.endswith("_us"):
            entry = out.setdefault(head, {})
            if isinstance(entry, dict):
                entry[leaf] = value
        else:
            out[name] = value
    return out


def replay_frames(
    directory: str, window_s: float | None = None
) -> list[tuple[float, dict[str, Any]]]:
    """Every recorded scrape in ``directory`` as ``(ts, snapshot)`` frames."""
    from ..obs.tsdb import TimeSeriesStore

    store = TimeSeriesStore(directory)
    try:
        times = store.scrape_times()
        if window_s is not None and times:
            horizon = times[-1] - window_s
            times = [ts for ts in times if ts >= horizon]
        return [(ts, _unflatten(store.snapshot_at(ts))) for ts in times]
    finally:
        store.close()


def _run_history(directory: str, window_s: float | None) -> int:
    frames = replay_frames(directory, window_s)
    if not frames:
        print(f"no recorded scrapes under {directory}", file=sys.stderr)
        return 1
    trends: Trends = {}
    previous: dict[str, Any] | None = None
    previous_ts = 0.0
    rendered: str = ""
    for ts, snapshot in frames:
        elapsed = ts - previous_ts if previous is not None else 0.0
        update_trends(trends, snapshot, previous, elapsed)
        rendered = render_top(snapshot, previous, elapsed, trends)
        previous = snapshot
        previous_ts = ts
    start = time.strftime("%H:%M:%S", time.localtime(frames[0][0]))
    end = time.strftime("%H:%M:%S", time.localtime(frames[-1][0]))
    print(
        f"history replay: {len(frames)} frames from {directory} "
        f"({start} → {end}); final frame:"
    )
    print(rendered)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.top",
        description="Live firing rates and latencies from a Sentinel "
        "metrics exporter, or a replay from an on-disk telemetry store.",
    )
    parser.add_argument(
        "url", nargs="?", default=None,
        help="exporter base URL (serving /vars); omit with --history",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default 2)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (same as --iterations 1; "
        "exits 1 if the exporter is unreachable)",
    )
    parser.add_argument(
        "--history", metavar="DIR", default=None,
        help="replay recorded scrapes from a telemetry store directory "
        "instead of polling an exporter",
    )
    parser.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="with --history: only replay the last SECONDS of scrapes",
    )
    args = parser.parse_args(argv)
    if args.history is not None:
        return _run_history(args.history, args.window)
    if args.url is None:
        parser.error("url is required unless --history is given")
    iterations = 1 if args.once else args.iterations

    trends: Trends = {}
    previous: dict[str, Any] | None = None
    last_poll = 0.0
    frames = 0
    try:
        while True:
            try:
                snapshot = fetch_vars(args.url)
            except OSError as exc:
                # URLError subclasses OSError, so this covers refused
                # connections, DNS failures and timeouts alike.
                reason = getattr(exc, "reason", None) or exc
                print(
                    f"exporter unreachable at {args.url}: {reason} "
                    f"(retrying in {args.interval:g}s)",
                    file=sys.stderr,
                )
                if args.once:
                    return 1
                time.sleep(args.interval)
                continue
            elapsed = time.monotonic() - last_poll if previous else 0.0
            last_poll = time.monotonic()
            update_trends(trends, snapshot, previous, elapsed)
            frame = render_top(snapshot, previous, elapsed, trends)
            if previous is not None and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")  # clear between frames
            print(frame)
            previous = snapshot
            frames += 1
            if iterations and frames >= iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
