"""Live terminal view of rule firing rates and latencies.

Usage::

    python -m repro.tools.top http://127.0.0.1:9100            # live
    python -m repro.tools.top http://127.0.0.1:9100 --interval 5
    python -m repro.tools.top http://127.0.0.1:9100 --once     # one frame

Polls the ``/vars`` JSON endpoint of a running
:class:`repro.obs.exporter.ObservabilityServer` (a separate process
cannot read the in-process registry, so the exporter is the data path)
and renders:

* per-rule firing rates — deltas of the ``rule_firings{rule=…,outcome=…}``
  counters between polls (the first frame shows totals);
* pipeline latency p50/p95/p99 from every ``*_us`` histogram summary.

``--iterations`` bounds the loop (0 = run until interrupted) and
``--once`` is shorthand for a single frame; the rendering is a pure
function of two snapshots, so tests drive it directly.  When the
exporter is unreachable the tool prints a one-line notice and keeps
retrying at the poll interval (``--once`` exits non-zero instead).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any
from urllib.request import urlopen

from ..obs.exporter import parse_metric_name

__all__ = ["fetch_vars", "render_top", "main"]


def fetch_vars(url: str, timeout: float = 5.0) -> dict[str, Any]:
    """GET ``<url>/vars`` and return the decoded snapshot."""
    with urlopen(url.rstrip("/") + "/vars", timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _firings(snapshot: dict[str, Any]) -> dict[tuple[str, str], int]:
    """``(rule, outcome) -> count`` from the labeled firing counters."""
    out: dict[tuple[str, str], int] = {}
    for name, value in snapshot.items():
        base, labels = parse_metric_name(name)
        if base == "rule_firings" and isinstance(value, (int, float)):
            key = (labels.get("rule", "?"), labels.get("outcome", "?"))
            out[key] = out.get(key, 0) + int(value)
    return out


def render_top(
    snapshot: dict[str, Any],
    previous: dict[str, Any] | None = None,
    elapsed: float = 0.0,
) -> str:
    """One frame: firing rates (vs ``previous``) and latency summaries."""
    lines: list[str] = []
    now = _firings(snapshot)
    before = _firings(previous) if previous else {}
    rating = previous is not None and elapsed > 0.0
    unit = "Δ/s" if rating else "total"
    lines.append(f"{'rule':<24} {'outcome':<9} {unit:>10}")
    rules = sorted({rule for rule, _ in now})
    for rule in rules:
        for (r, outcome), count in sorted(now.items()):
            if r != rule:
                continue
            delta = count - before.get((r, outcome), 0)
            value = f"{delta / elapsed:.1f}" if rating else str(count)
            lines.append(f"{rule:<24} {outcome:<9} {value:>10}")
    if not rules:
        lines.append("(no rule firings observed)")

    lines.append("")
    lines.append(
        f"{'latency':<24} {'count':>8} {'p50 µs':>9} {'p95 µs':>9} "
        f"{'p99 µs':>9}"
    )
    histograms = 0
    for name in sorted(snapshot):
        value = snapshot[name]
        if not (name.endswith("_us") and isinstance(value, dict)):
            continue
        histograms += 1
        lines.append(
            f"{name:<24} {value.get('count', 0):>8} "
            f"{value.get('p50', 0.0):>9.1f} {value.get('p95', 0.0):>9.1f} "
            f"{value.get('p99', 0.0):>9.1f}"
        )
    if not histograms:
        lines.append("(no latency histograms; enable the tracer)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.top",
        description="Live firing rates and latencies from a Sentinel "
        "metrics exporter.",
    )
    parser.add_argument("url", help="exporter base URL (serving /vars)")
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default 2)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (same as --iterations 1; "
        "exits 1 if the exporter is unreachable)",
    )
    args = parser.parse_args(argv)
    iterations = 1 if args.once else args.iterations

    previous: dict[str, Any] | None = None
    last_poll = 0.0
    frames = 0
    try:
        while True:
            try:
                snapshot = fetch_vars(args.url)
            except OSError as exc:
                # URLError subclasses OSError, so this covers refused
                # connections, DNS failures and timeouts alike.
                reason = getattr(exc, "reason", None) or exc
                print(
                    f"exporter unreachable at {args.url}: {reason} "
                    f"(retrying in {args.interval:g}s)",
                    file=sys.stderr,
                )
                if args.once:
                    return 1
                time.sleep(args.interval)
                continue
            elapsed = time.monotonic() - last_poll if previous else 0.0
            last_poll = time.monotonic()
            frame = render_top(snapshot, previous, elapsed)
            if previous is not None and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")  # clear between frames
            print(frame)
            previous = snapshot
            frames += 1
            if iterations and frames >= iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
