"""Render and query causality traces from the command line.

Usage::

    python -m repro.tools.trace spans.jsonl                  # span tree
    python -m repro.tools.trace spans.jsonl --rule SalaryCheck
    python -m repro.tools.trace spans.jsonl --class Employee --kind method
    python -m repro.tools.trace spans.jsonl --oid 17
    python -m repro.tools.trace spans.jsonl --explain SalaryCheck

The input is the JSONL file written by
:meth:`repro.obs.tracer.CausalityTracer.export_jsonl` — one span per
line.  The default view is the span *tree*: children indented under the
span that was open when they began, so one monitored call reads top-down
as method → occurrence → detection → rule → condition/action.

``--explain RULE`` answers "why did (or didn't) this rule fire": per
coupling mode how often it was scheduled, how its condition decided, its
latency profile, and the triggering occurrence sequence numbers — the
EXPLAIN RULE report of the observability layer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Iterable

from ..obs.tracer import Span

__all__ = ["load_spans", "filter_spans", "render_tree", "explain_rule", "main"]


def load_spans(source: "str | IO[str]") -> list[Span]:
    """Parse a JSONL trace export (path or open stream) into spans."""
    if hasattr(source, "read"):
        return _parse_lines(source)  # type: ignore[arg-type]
    with open(source) as handle:
        return _parse_lines(handle)


def _parse_lines(handle: "IO[str]") -> list[Span]:
    spans = []
    for lineno, line in enumerate(handle, 1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(Span.from_json(json.loads(line)))
        except (json.JSONDecodeError, KeyError) as exc:
            raise ValueError(f"bad trace line {lineno}: {exc}") from exc
    return spans


def filter_spans(
    spans: Iterable[Span],
    rule: str | None = None,
    class_name: str | None = None,
    oid: int | None = None,
    kind: str | None = None,
) -> list[Span]:
    """Spans matching every given criterion.

    ``rule`` matches the ``rule`` attribute (or the span name for
    rule-pipeline kinds); ``class_name`` and ``oid`` match the attributes
    the event-side spans carry.
    """
    out = []
    for span in spans:
        if kind is not None and span.kind != kind:
            continue
        if rule is not None:
            named = span.attrs.get("rule") == rule or (
                span.kind in ("schedule", "rule", "condition", "action", "outcome")
                and span.name == rule
            )
            if not named:
                continue
        if class_name is not None and span.attrs.get("class") != class_name:
            continue
        if oid is not None and span.attrs.get("oid") != oid:
            continue
        out.append(span)
    return out


def render_tree(spans: list[Span]) -> str:
    """Indent spans under their parents; orphans (evicted or filtered
    parents) render at top level, in start order."""
    by_id = {span.span_id: span for span in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start_us, s.span_id))

    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        attrs = " ".join(
            f"{k}={v}" for k, v in span.attrs.items() if v is not None
        )
        duration = f" {span.duration_us:.1f}µs" if span.duration_us else ""
        lines.append(
            f"{'  ' * depth}{span.kind:<10} {span.name}{duration}"
            + (f"  [{attrs}]" if attrs else "")
        )
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    return "\n".join(lines)


def explain_rule(spans: list[Span], rule_name: str) -> str:
    """Per-rule report: scheduling, condition decisions, latencies."""
    mine = filter_spans(spans, rule=rule_name)
    if not mine:
        return f"no trace spans for rule {rule_name!r}"

    scheduled = [s for s in mine if s.kind == "schedule"]
    executions = [s for s in mine if s.kind == "rule"]
    conditions = [s for s in mine if s.kind == "condition"]
    actions = [s for s in mine if s.kind == "action"]
    outcomes = [s for s in mine if s.kind == "outcome"]

    by_coupling: dict[str, int] = {}
    for span in scheduled:
        mode = span.attrs.get("coupling", "?")
        by_coupling[mode] = by_coupling.get(mode, 0) + 1

    fired = sum(1 for s in outcomes if s.attrs.get("fired"))
    skipped = sum(1 for s in outcomes if not s.attrs.get("fired"))
    passed = sum(1 for s in conditions if s.attrs.get("passed"))
    errors = [s for s in mine if "error" in s.attrs]

    lines = [f"rule {rule_name}"]
    lines.append(
        f"  scheduled: {len(scheduled)}"
        + (
            " ("
            + ", ".join(f"{m}: {n}" for m, n in sorted(by_coupling.items()))
            + ")"
            if by_coupling
            else ""
        )
    )
    lines.append(f"  executed:  {len(executions)}")
    lines.append(f"  fired:     {fired}   skipped by condition: {skipped}")
    if conditions:
        lines.append(
            f"  condition: {passed}/{len(conditions)} passed, "
            f"mean {_mean(conditions):.1f}µs"
        )
    if actions:
        lines.append(
            f"  action:    mean {_mean(actions):.1f}µs "
            f"max {max(s.duration_us for s in actions):.1f}µs"
        )
    if executions:
        lines.append(
            f"  rule span: mean {_mean(executions):.1f}µs "
            f"max {max(s.duration_us for s in executions):.1f}µs"
        )
    if errors:
        lines.append(f"  errors:    {len(errors)}")
        for span in errors[:5]:
            lines.append(f"    {span.kind} seq={span.attrs.get('seq')}: "
                         f"{span.attrs['error']}")
    seqs = sorted(
        {s.attrs.get("seq") for s in outcomes if s.attrs.get("seq") is not None}
    )
    if seqs:
        shown = ", ".join(str(s) for s in seqs[-10:])
        lines.append(f"  triggering occurrence seqs: {shown}")
    return "\n".join(lines)


def _mean(spans: list[Span]) -> float:
    return sum(s.duration_us for s in spans) / len(spans)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace",
        description="Render and query causality-trace JSONL exports.",
    )
    parser.add_argument("path", help="trace file (JSONL, one span per line)")
    parser.add_argument("--rule", default=None, help="filter to one rule")
    parser.add_argument(
        "--class", dest="class_name", default=None,
        help="filter to spans from one reactive class",
    )
    parser.add_argument(
        "--oid", type=int, default=None, help="filter to one object"
    )
    parser.add_argument("--kind", default=None, help="filter by span kind")
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print the EXPLAIN RULE report for one rule",
    )
    args = parser.parse_args(argv)

    try:
        spans = load_spans(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.explain is not None:
        print(explain_rule(spans, args.explain))
        return 0

    spans = filter_spans(
        spans,
        rule=args.rule,
        class_name=args.class_name,
        oid=args.oid,
        kind=args.kind,
    )
    if not spans:
        print("no spans match")
        return 0
    print(render_tree(spans))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
