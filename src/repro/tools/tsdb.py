"""Inspect and compact on-disk telemetry stores.

Usage::

    python -m repro.tools.tsdb info /var/lib/sentinel/tsdb
    python -m repro.tools.tsdb series /var/lib/sentinel/tsdb
    python -m repro.tools.tsdb dump /var/lib/sentinel/tsdb \\
        --series txn_commit_us.p99 --last 600
    python -m repro.tools.tsdb dump /var/lib/sentinel/tsdb \\
        --series rule_firings* --json
    python -m repro.tools.tsdb compact /var/lib/sentinel/tsdb

``info`` prints store totals and the per-segment table (including any
torn tail bytes left by a crash — nonzero is normal after a kill, the
reader skips them); ``dump`` prints samples for one or more series
(``--series`` accepts fnmatch patterns); ``compact`` merges every
segment into one, dropping samples past the retention age.

The store format is append-only and self-contained, so these commands
are safe against a live writer: readers only parse flushed bytes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from fnmatch import fnmatchcase

from ..obs.tsdb import TimeSeriesStore

__all__ = ["main"]


def _open(directory: str) -> TimeSeriesStore:
    return TimeSeriesStore(directory)


def _cmd_info(args: argparse.Namespace) -> int:
    store = _open(args.directory)
    try:
        stats = store.stats()
        segments = store.segments()
    finally:
        store.close()
    if args.json:
        print(json.dumps({"stats": stats, "segments": segments}, indent=2))
        return 0
    print(f"store: {args.directory}")
    for key in ("segments", "bytes", "frames", "samples", "series"):
        print(f"  {key:<10} {int(stats[key])}")
    if stats["torn_bytes"]:
        print(f"  torn bytes {int(stats['torn_bytes'])} (skipped on read)")
    print()
    print(f"{'seq':>6} {'bytes':>10} {'frames':>8} {'samples':>9} "
          f"{'start':>9} {'end':>9} {'torn':>6}")
    for seg in segments:
        start = time.strftime("%H:%M:%S", time.localtime(seg["start_ts"]))
        end = time.strftime("%H:%M:%S", time.localtime(seg["end_ts"]))
        print(
            f"{seg['seq']:>6} {seg['bytes']:>10} {seg['frames']:>8} "
            f"{seg['samples']:>9} {start:>9} {end:>9} "
            f"{seg['torn_bytes']:>6}"
        )
    return 0


def _cmd_series(args: argparse.Namespace) -> int:
    store = _open(args.directory)
    try:
        names = store.series()
    finally:
        store.close()
    if args.json:
        print(json.dumps(names))
    else:
        for name in names:
            print(name)
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    store = _open(args.directory)
    try:
        names = store.series()
        if args.series:
            names = [n for n in names if fnmatchcase(n, args.series)]
        if not names:
            print(f"no series match {args.series!r}", file=sys.stderr)
            return 1
        end = args.end if args.end is not None else time.time()
        start = args.start
        if args.last is not None:
            newest = store.last_scrape_ts()
            if newest is not None:
                end = newest
            start = end - args.last
        out: dict[str, list[list[float]]] = {}
        for name in names:
            out[name] = [
                [ts, value]
                for ts, value in store.query(name, start=start, end=end)
            ]
    finally:
        store.close()
    if args.json:
        print(json.dumps(out))
        return 0
    for name in names:
        print(f"# {name}")
        for ts, value in out[name]:
            stamp = time.strftime("%H:%M:%S", time.localtime(ts))
            print(f"{stamp} {ts:.3f} {value:g}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    store = _open(args.directory)
    try:
        result = store.compact()
    finally:
        store.close()
    if args.json:
        print(json.dumps(result))
    else:
        print(
            f"compacted {result['segments_before']} segments "
            f"({result['bytes_before']} B) into "
            f"{result['segments_after']} ({result['bytes_after']} B); "
            f"{result['samples']} samples kept, "
            f"{result['samples_dropped']} dropped by age"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.tsdb",
        description="Inspect and compact Sentinel telemetry stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="store totals and segment table")
    info.add_argument("directory")
    info.add_argument("--json", action="store_true")
    info.set_defaults(fn=_cmd_info)

    series = sub.add_parser("series", help="list recorded series names")
    series.add_argument("directory")
    series.add_argument("--json", action="store_true")
    series.set_defaults(fn=_cmd_series)

    dump = sub.add_parser("dump", help="print samples for series")
    dump.add_argument("directory")
    dump.add_argument(
        "--series", default=None,
        help="series name or fnmatch pattern (default: every series)",
    )
    dump.add_argument("--start", type=float, default=None,
                      help="epoch seconds lower bound")
    dump.add_argument("--end", type=float, default=None,
                      help="epoch seconds upper bound")
    dump.add_argument(
        "--last", type=float, default=None, metavar="SECONDS",
        help="only the last SECONDS before the newest scrape",
    )
    dump.add_argument("--json", action="store_true")
    dump.set_defaults(fn=_cmd_dump)

    compact = sub.add_parser(
        "compact", help="merge segments, dropping aged samples"
    )
    compact.add_argument("directory")
    compact.add_argument("--json", action="store_true")
    compact.set_defaults(fn=_cmd_compact)

    args = parser.parse_args(argv)
    result: int = args.fn(args)
    return result


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
