"""Workloads: the paper's motivating domains plus synthetic generators."""

from .domains import (
    Account,
    Employee,
    FinancialInfo,
    Manager,
    Patient,
    Person,
    Physician,
    Portfolio,
    Stock,
)
from .generators import (
    EventStreamGenerator,
    make_employees,
    make_stocks,
    uniform_updates,
)

__all__ = [
    "Stock",
    "Portfolio",
    "FinancialInfo",
    "Employee",
    "Manager",
    "Person",
    "Account",
    "Patient",
    "Physician",
    "EventStreamGenerator",
    "make_stocks",
    "make_employees",
    "uniform_updates",
]
