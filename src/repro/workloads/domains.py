"""The paper's example domains as reactive classes.

Every application the paper uses to motivate the external monitoring
viewpoint is here: the stock/portfolio/financial-info trio (§2), the
employee/manager payroll pair (§4.7, §5.1), the person class with the
Marriage rule (Fig 9), bank accounts with deposit/withdraw (§4.6), and
the patient/physician monitoring scenario (§2.1).

These classes are used by the examples, the tests, and the benchmark
workloads.
"""

from __future__ import annotations

from ..core.interface import event_method
from ..core.reactive import Reactive

__all__ = [
    "Stock",
    "FinancialInfo",
    "Portfolio",
    "Employee",
    "Manager",
    "Person",
    "Account",
    "InsufficientFunds",
    "Patient",
    "Physician",
]


class Stock(Reactive):
    """A stock whose price changes are worth watching (§2)."""

    def __init__(self, symbol: str, price: float) -> None:
        super().__init__()
        self.symbol = symbol
        self.price = price

    @event_method
    def set_price(self, price: float) -> None:
        self.price = float(price)

    @event_method(after=True)
    def get_price(self) -> float:
        return self.price


class FinancialInfo(Reactive):
    """A market indicator (the paper's DowJones object)."""

    def __init__(self, name: str, value: float) -> None:
        super().__init__()
        self.name = name
        self.value = value
        self.change = 0.0

    @event_method
    def set_value(self, value: float) -> None:
        previous = self.value
        self.value = float(value)
        self.change = (
            100.0 * (self.value - previous) / previous if previous else 0.0
        )


class Portfolio(Reactive):
    """A portfolio that reacts to stocks and indicators (§2)."""

    def __init__(self, owner: str, cash: float = 0.0) -> None:
        super().__init__()
        self.owner = owner
        self.cash = cash
        self.holdings: dict[str, int] = {}
        self.trades: list[tuple[str, str, int, float]] = []

    @event_method
    def purchase(self, symbol: str, quantity: int, price: float) -> None:
        cost = quantity * price
        self.cash -= cost
        holdings = dict(self.holdings)
        holdings[symbol] = holdings.get(symbol, 0) + quantity
        self.holdings = holdings
        self.trades = self.trades + [("buy", symbol, quantity, price)]

    @event_method
    def sell(self, symbol: str, quantity: int, price: float) -> None:
        holdings = dict(self.holdings)
        held = holdings.get(symbol, 0)
        if held < quantity:
            raise ValueError(f"cannot sell {quantity} {symbol}; hold {held}")
        holdings[symbol] = held - quantity
        self.holdings = holdings
        self.cash += quantity * price
        self.trades = self.trades + [("sell", symbol, quantity, price)]


class Employee(Reactive):
    """The paper's employee (Fig 8 / §5.1)."""

    def __init__(self, name: str, salary: float, age: int = 30) -> None:
        super().__init__()
        self.name = name
        self.salary = salary
        self.age = age
        self.manager: "Manager | None" = None

    @event_method(before=True)
    def change_salary(self, amount: float) -> None:
        self.salary += amount

    @event_method
    def set_salary(self, salary: float) -> None:
        self.salary = float(salary)

    @event_method
    def change_income(self, amount: float) -> None:
        self.salary = float(amount)

    @event_method(after=True)
    def get_salary(self) -> float:
        return self.salary

    @event_method(before=True, after=True)
    def get_age(self) -> int:
        return self.age

    def get_name(self) -> str:  # deliberately NOT an event generator (Fig 8)
        return self.name


class Manager(Employee):
    """A manager is an employee with reports (§5.1)."""

    def __init__(self, name: str, salary: float, age: int = 40) -> None:
        super().__init__(name, salary, age)
        self.reports: list[Employee] = []

    def add_report(self, employee: Employee) -> None:
        employee.manager = self
        self.reports = self.reports + [employee]

    def salary_greater_than_all_reports(self) -> bool:
        return all(r.salary < self.salary for r in self.reports)


class Person(Reactive):
    """The person class carrying the Marriage class-level rule (Fig 9).

    The rule itself is attached in tests/examples (attaching it here
    would abort every same-sex marriage in every test importing this
    module); :func:`make_person_class` in the tests shows the in-class
    declaration form.
    """

    def __init__(self, name: str, sex: str) -> None:
        super().__init__()
        self.name = name
        self.sex = sex
        self.spouse: "Person | None" = None

    @event_method(before=True)
    def marry(self, spouse: "Person") -> None:
        self.spouse = spouse
        spouse.spouse = self


class InsufficientFunds(Exception):
    """Withdrawal beyond the account balance."""


class Account(Reactive):
    """A bank account with the deposit/withdraw sequence events (§4.6)."""

    def __init__(self, number: str, balance: float = 0.0) -> None:
        super().__init__()
        self.number = number
        self.balance = balance

    @event_method
    def deposit(self, amount: float) -> float:
        if amount <= 0:
            raise ValueError("deposit must be positive")
        self.balance += amount
        return self.balance

    @event_method(before=True)
    def withdraw(self, amount: float) -> float:
        if amount <= 0:
            raise ValueError("withdrawal must be positive")
        if amount > self.balance:
            raise InsufficientFunds(
                f"cannot withdraw {amount}; balance is {self.balance}"
            )
        self.balance -= amount
        return self.balance


class Patient(Reactive):
    """A monitored patient (§2.1): vitals change, interested parties vary."""

    def __init__(self, name: str, condition: str = "stable") -> None:
        super().__init__()
        self.name = name
        self.condition = condition
        self.temperature = 37.0
        self.heart_rate = 70
        self.medications: list[str] = []

    @event_method
    def record_temperature(self, celsius: float) -> None:
        self.temperature = float(celsius)

    @event_method
    def record_heart_rate(self, bpm: int) -> None:
        self.heart_rate = int(bpm)

    @event_method
    def diagnose(self, condition: str) -> None:
        self.condition = condition

    @event_method
    def prescribe(self, medication: str) -> None:
        self.medications = self.medications + [medication]


class Physician(Reactive):
    """A physician who can be alerted about patients they follow."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.alerts: list[str] = []

    @event_method
    def alert(self, message: str) -> None:
        self.alerts = self.alerts + [message]
