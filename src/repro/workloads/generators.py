"""Synthetic workload generators for the benchmarks.

Deterministic (seeded) generators for object populations, update streams,
and rule sets, so benchmark runs are reproducible and the Sentinel / Ode /
ADAM comparisons see identical work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator

from .domains import Employee, Manager, Stock

__all__ = [
    "make_stocks",
    "make_employees",
    "uniform_updates",
    "EventStreamGenerator",
    "StreamItem",
]


def make_stocks(count: int, seed: int = 7) -> list[Stock]:
    """``count`` stocks with deterministic symbols and prices."""
    rng = random.Random(seed)
    return [
        Stock(f"SYM{i:04d}", round(rng.uniform(10.0, 500.0), 2))
        for i in range(count)
    ]


def make_employees(
    count: int, managers: int = 0, seed: int = 11
) -> tuple[list[Employee], list[Manager]]:
    """A payroll population; employees are attached to managers round-robin."""
    rng = random.Random(seed)
    manager_objs = [
        Manager(f"mgr{m}", salary=round(rng.uniform(80_000, 150_000), 2))
        for m in range(managers)
    ]
    employees = []
    for i in range(count):
        employee = Employee(
            f"emp{i}", salary=round(rng.uniform(30_000, 79_000), 2)
        )
        if manager_objs:
            manager_objs[i % len(manager_objs)].add_report(employee)
        employees.append(employee)
    return employees, manager_objs


def uniform_updates(
    objects: list,
    count: int,
    apply: Callable,
    seed: int = 13,
) -> int:
    """Apply ``count`` updates to uniformly-chosen objects.

    ``apply(obj, rng)`` performs one update; returns the number applied.
    """
    rng = random.Random(seed)
    for _ in range(count):
        apply(rng.choice(objects), rng)
    return count


@dataclass(frozen=True, slots=True)
class StreamItem:
    """One generated action: which object, which method, what arguments."""

    index: int
    method: str
    args: tuple


class EventStreamGenerator:
    """A reproducible stream of method invocations over a population.

    ``methods`` maps method names to argument factories
    ``(rng) -> tuple``; each stream item picks an object uniformly and a
    method according to the given weights.
    """

    def __init__(
        self,
        population: int,
        methods: dict[str, Callable[[random.Random], tuple]],
        weights: dict[str, float] | None = None,
        seed: int = 17,
    ) -> None:
        if population < 1:
            raise ValueError("population must be positive")
        if not methods:
            raise ValueError("at least one method is required")
        self._population = population
        self._names = list(methods)
        self._factories = methods
        raw = [
            (weights or {}).get(name, 1.0) for name in self._names
        ]
        total = sum(raw)
        self._weights = [w / total for w in raw]
        self._seed = seed

    def items(self, count: int) -> Iterator[StreamItem]:
        """Yield ``count`` reproducible stream items."""
        rng = random.Random(self._seed)
        for _ in range(count):
            name = rng.choices(self._names, weights=self._weights, k=1)[0]
            yield StreamItem(
                index=rng.randrange(self._population),
                method=name,
                args=self._factories[name](rng),
            )

    def replay(self, objects: list, count: int) -> int:
        """Invoke each generated item against the object list."""
        applied = 0
        for item in self.items(count):
            method = getattr(objects[item.index], item.method)
            method(*item.args)
            applied += 1
        return applied
