"""Signature-check fixtures: wrong arity and unknown parameters.

* ``TwoArgCondition``'s condition takes ``(ctx, extra)`` — it cannot be
  called with the single RuleContext argument — SA020.
* ``WrongParam``'s action consults ``ctx.param("missing")``, which no
  triggering event binds — SA021.
"""

from repro.core import Reactive, Sentinel, event_method


class GaugeSensor(Reactive):
    @event_method
    def observe(self, value: float) -> None:
        pass


def build_system() -> Sentinel:
    sentinel = Sentinel(adopt_class_rules=False)
    sensor = GaugeSensor()

    bad = sentinel.create_rule(
        "TwoArgCondition",
        "end GaugeSensor::observe(float value)",
        condition=lambda ctx, extra: True,
        action=lambda ctx: None,
    )
    bad.subscribe_to(sensor)

    wrong = sentinel.create_rule(
        "WrongParam",
        "end GaugeSensor::observe(float value)",
        action=lambda ctx: print(ctx.param("missing")),
    )
    wrong.subscribe_to(sensor)
    return sentinel
