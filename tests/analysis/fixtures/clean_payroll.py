"""The corrected twin of :mod:`tests.analysis.fixtures.racy_payroll`.

Same shape — eight rules over an ``Account``/``Payroll`` pair — with
each seeded hazard repaired the way the analyzer's message suggests:

* the two bonus writers now write **disjoint** attributes and neither
  read-modifies-writes (no SA100/SA002);
* ``Forward``/``Backward`` touch the two families in the **same**
  order (no SA101);
* both guard rules guard on the **same** attribute one of them writes,
  promoting the write-skew to an ordinary write conflict 2PL serializes
  (no SA102);
* the sleep moved to a **decoupled** rule — a worker thread may block,
  the triggering transaction's locks are long released (no SA103);
* the decoupled rule now only writes object state instead of mutating
  the rule base (no SA104).
"""

import time

from repro.core import Coupling, Reactive, Sentinel, event_method
from repro.oodb.schema import ClassRegistry

# A private registry: this module's Account/Payroll must not shadow
# same-named classes other tests persist through the global registry.
registry = ClassRegistry()


class Account(Reactive, registry=registry):
    def __init__(self) -> None:
        super().__init__()
        self.balance = 0.0
        self.bonus = 0.0
        self.vacation = 0
        self.oncall = 1

    @event_method
    def deposit(self, amount: float) -> None:
        self.balance += amount

    @event_method
    def review(self) -> None:
        pass

    def audit(self) -> None:
        pass


class Payroll(Reactive, registry=registry):
    def __init__(self) -> None:
        super().__init__()
        self.total = 0.0

    @event_method
    def close(self) -> None:
        pass

    def run(self) -> None:
        pass


account = Account()
payroll = Payroll()
sentinel = Sentinel(adopt_class_rules=False)


def _bonus_one(ctx) -> None:
    ctx.source.bonus = ctx.param("amount") * 0.1


def _bonus_two(ctx) -> None:
    ctx.source.vacation = 1


def _forward(ctx) -> None:
    account.audit()
    payroll.run()


def _also_forward(ctx) -> None:
    account.audit()
    payroll.run()


def _guard_x_cond(ctx) -> bool:
    return ctx.source.oncall > 1


def _guard_x_act(ctx) -> None:
    ctx.source.vacation = 1


def _guard_y_cond(ctx) -> bool:
    return ctx.source.oncall > 0


def _guard_y_act(ctx) -> None:
    ctx.source.oncall = 0


def _slow_notify(ctx) -> None:
    time.sleep(0.01)


def _tally(ctx) -> None:
    ctx.source.total = ctx.source.total + 1.0


def build_system() -> Sentinel:
    if len(sentinel.rules):
        return sentinel
    deposit = "end Account::deposit(float amount)"
    review = "end Account::review()"
    close = "end Payroll::close()"
    for name, event, condition, action, coupling in (
        ("BonusOne", deposit, None, _bonus_one, Coupling.DECOUPLED),
        ("BonusTwo", deposit, None, _bonus_two, Coupling.DECOUPLED),
        ("Forward", review, None, _forward, Coupling.IMMEDIATE),
        ("Backward", close, None, _also_forward, Coupling.IMMEDIATE),
        ("GuardX", review, _guard_x_cond, _guard_x_act, Coupling.IMMEDIATE),
        ("GuardY", close, _guard_y_cond, _guard_y_act, Coupling.IMMEDIATE),
        ("Notifier", deposit, None, _slow_notify, Coupling.DECOUPLED),
        ("Tally", close, None, _tally, Coupling.DECOUPLED),
    ):
        rule = sentinel.create_rule(
            name, event, condition=condition, action=action, coupling=coupling
        )
        rule.subscribe_to(account if "Account" in str(event) else payroll)
    return sentinel
