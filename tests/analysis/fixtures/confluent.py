"""A confluent and a non-confluent rule pair on the same event.

``WriterOne`` and ``WriterTwo`` both trigger on the same primitive at
the same priority and both write ``level`` on the source — their final
state is order-dependent (SA002).  ``Independent`` shares the trigger
but writes a disjoint attribute, so it pairs cleanly with both.
"""

from repro.core import Reactive, Sentinel, event_method


class LevelMeter(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.level = 0.0
        self.samples = 0

    @event_method
    def measure(self, value: float) -> None:
        self.samples += 1


def _raise_level(ctx) -> None:
    ctx.source.level = ctx.param("value")


def _damp_level(ctx) -> None:
    ctx.source.level = ctx.param("value") / 2.0


def _count(ctx) -> None:
    ctx.source.sample_log = ctx.param("value")


def build_system() -> Sentinel:
    sentinel = Sentinel(adopt_class_rules=False)
    meter = LevelMeter()
    for name, action in (
        ("WriterOne", _raise_level),
        ("WriterTwo", _damp_level),
        ("Independent", _count),
    ):
        rule = sentinel.create_rule(
            name, "end LevelMeter::measure(float value)", action=action
        )
        rule.subscribe_to(meter)
    return sentinel
