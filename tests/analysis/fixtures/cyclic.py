"""A deliberately non-terminating rule base: A and B fire each other.

Rule ``A`` triggers on ``end PingPongNode::ping`` and calls
``ctx.source.pong()``; rule ``B`` triggers on ``end PingPongNode::pong``
and calls ``ctx.source.ping()``.  Neither has a condition, so the cycle
is unconditional — SA001 at error severity with witness ``A -> B -> A``.

``build_system(conditional=True)`` puts a condition on ``A``, demoting
the finding to a warning.
"""

from repro.core import Reactive, Sentinel, event_method


class PingPongNode(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.hits = 0

    @event_method
    def ping(self) -> None:
        self.hits += 1

    @event_method
    def pong(self) -> None:
        self.hits += 1


def build_system(conditional: bool = False) -> Sentinel:
    sentinel = Sentinel(adopt_class_rules=False)
    node = PingPongNode()
    rule_a = sentinel.create_rule(
        "A",
        "end PingPongNode::ping()",
        condition=(lambda ctx: ctx.source.hits < 5) if conditional else None,
        action=lambda ctx: ctx.source.pong(),
    )
    rule_b = sentinel.create_rule(
        "B",
        "end PingPongNode::pong()",
        action=lambda ctx: ctx.source.ping(),
    )
    rule_a.subscribe_to(node)
    rule_b.subscribe_to(node)
    return sentinel
