"""Dead-rule fixtures: unraisable events, a doomed Sequence, a rule
nothing ever enables.

* ``DeadRule`` triggers on ``end Ghost::vanish()`` — no registered
  reactive class declares ``vanish`` — SA010.
* ``DoomedSequence`` triggers on a Sequence whose *first* constituent is
  that same unraisable event — SA011 (but not SA010: its second leaf is
  raisable).
* ``SleepingRule`` is created disabled and no rule's action calls
  ``enable()`` — SA012.
"""

from repro.core import Primitive, Reactive, Sentinel, Sequence, event_method


class WardSensor(Reactive):
    @event_method
    def observe(self, value: float) -> None:
        pass


def build_system() -> Sentinel:
    sentinel = Sentinel(adopt_class_rules=False)
    sensor = WardSensor()

    dead = sentinel.create_rule(
        "DeadRule",
        "end Ghost::vanish()",
        action=lambda ctx: None,
    )
    dead.subscribe_to(sensor)

    doomed = sentinel.create_rule(
        "DoomedSequence",
        event=Sequence(
            Primitive("end Ghost::vanish()"),
            Primitive("end WardSensor::observe(float value)"),
            name="doomed",
        ),
        action=lambda ctx: None,
    )
    doomed.subscribe_to(sensor)

    sleeping = sentinel.create_rule(
        "SleepingRule",
        "end WardSensor::observe(float value)",
        action=lambda ctx: None,
        enabled=False,
    )
    sleeping.subscribe_to(sensor)
    return sentinel
