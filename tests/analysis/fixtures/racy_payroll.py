"""A deliberately racy payroll rule base: every SA1xx code fires once.

The corrected twin is :mod:`tests.analysis.fixtures.clean_payroll`;
``tests/analysis/test_concurrency.py`` asserts this module produces
exactly SA100–SA104 (golden text + SARIF) and the twin produces none.

The seeded hazards:

* ``BonusOne``/``BonusTwo`` — decoupled, common trigger, both
  read-modify-write ``bonus`` (SA100 lost update);
* ``Forward``/``Backward`` — touch the ``Account`` and ``Payroll``
  families in opposite statement order (SA101 lock-order inversion);
* ``GuardX``/``GuardY`` — converse guarded writes on
  ``oncall``/``vacation`` (SA102 write-skew);
* ``Sleepy`` — ``time.sleep`` in an immediate action, stretching every
  2PL lock hold (SA103);
* ``Meddler`` — a decoupled action mutating the rule base via
  ``Sentinel.create_rule`` from a worker thread (SA104).
"""

import time

from repro.core import Coupling, Reactive, Sentinel, event_method
from repro.oodb.schema import ClassRegistry

# A private registry: this module's Account/Payroll must not shadow
# same-named classes other tests persist through the global registry.
registry = ClassRegistry()


class Account(Reactive, registry=registry):
    def __init__(self) -> None:
        super().__init__()
        self.balance = 0.0
        self.bonus = 0.0
        self.vacation = 0
        self.oncall = 1

    @event_method
    def deposit(self, amount: float) -> None:
        self.balance += amount

    @event_method
    def review(self) -> None:
        pass

    def audit(self) -> None:
        pass


class Payroll(Reactive, registry=registry):
    def __init__(self) -> None:
        super().__init__()
        self.total = 0.0

    @event_method
    def close(self) -> None:
        pass

    def run(self) -> None:
        pass


account = Account()
payroll = Payroll()
sentinel = Sentinel(adopt_class_rules=False)


def _bonus_one(ctx) -> None:
    ctx.source.bonus = ctx.source.bonus + ctx.param("amount") * 0.1


def _bonus_two(ctx) -> None:
    ctx.source.bonus = ctx.source.bonus + 5.0


def _forward(ctx) -> None:
    account.audit()
    payroll.run()


def _backward(ctx) -> None:
    payroll.run()
    account.audit()


def _guard_x_cond(ctx) -> bool:
    return ctx.source.oncall > 1


def _guard_x_act(ctx) -> None:
    ctx.source.vacation = 1


def _guard_y_cond(ctx) -> bool:
    return ctx.source.vacation == 0


def _guard_y_act(ctx) -> None:
    ctx.source.oncall = 0


def _sleepy(ctx) -> None:
    time.sleep(0.01)


def _meddle(ctx) -> None:
    sentinel.create_rule(
        "Escalate",
        "end Account::deposit(float amount)",
        action=_sleepy,
    )


def build_system() -> Sentinel:
    if len(sentinel.rules):
        return sentinel
    deposit = "end Account::deposit(float amount)"
    review = "end Account::review()"
    close = "end Payroll::close()"
    for name, event, condition, action, coupling in (
        ("BonusOne", deposit, None, _bonus_one, Coupling.DECOUPLED),
        ("BonusTwo", deposit, None, _bonus_two, Coupling.DECOUPLED),
        ("Forward", review, None, _forward, Coupling.IMMEDIATE),
        ("Backward", close, None, _backward, Coupling.IMMEDIATE),
        ("GuardX", review, _guard_x_cond, _guard_x_act, Coupling.IMMEDIATE),
        ("GuardY", close, _guard_y_cond, _guard_y_act, Coupling.IMMEDIATE),
        ("Sleepy", deposit, None, _sleepy, Coupling.IMMEDIATE),
        ("Meddler", close, None, _meddle, Coupling.DECOUPLED),
    ):
        rule = sentinel.create_rule(
            name, event, condition=condition, action=action, coupling=coupling
        )
        rule.subscribe_to(account if "Account" in str(event) else payroll)
    return sentinel
