"""Tests for the analyses (repro.analysis.checks) over golden fixtures."""

from repro.analysis import analyze

from .fixtures import bad_arity, confluent, cyclic, dead_rules


def _by_code(report, code):
    return [f for f in report.findings if f.code == code]


# ---------------------------------------------------------------------- SA001
def test_unconditional_cycle_is_an_error_with_witness():
    report = analyze(cyclic.build_system())
    findings = _by_code(report, "SA001")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity == "error"
    assert finding.witness == ("A", "B", "A")
    assert "A -> B -> A" in finding.message
    assert finding.file and finding.file.endswith("cyclic.py")


def test_conditional_cycle_is_only_a_warning():
    report = analyze(cyclic.build_system(conditional=True))
    findings = _by_code(report, "SA001")
    assert len(findings) == 1
    assert findings[0].severity == "warning"
    assert "conditional" in findings[0].message


def test_disabled_rule_also_demotes_the_cycle():
    sentinel = cyclic.build_system()
    sentinel.rules.get("B").disable()
    report = analyze(sentinel)
    assert _by_code(report, "SA001")[0].severity == "warning"


# ---------------------------------------------------------------------- SA002
def test_write_write_conflict_flagged_once():
    report = analyze(confluent.build_system())
    findings = _by_code(report, "SA002")
    assert len(findings) == 1
    message = findings[0].message
    assert "'WriterOne'" in message and "'WriterTwo'" in message
    assert "write/write" in message and "level" in message
    assert "Independent" not in message


def test_different_priorities_are_not_flagged():
    sentinel = confluent.build_system()
    sentinel.rules.get("WriterTwo").priority = 5
    report = analyze(sentinel)
    assert not _by_code(report, "SA002")


# ---------------------------------------------- SA010 / SA011 / SA012
def test_dead_rule_fixture_produces_all_three_codes():
    report = analyze(dead_rules.build_system())
    dead = _by_code(report, "SA010")
    assert [f.rule for f in dead] == ["DeadRule"]
    assert "Ghost::vanish" in dead[0].message

    doomed = _by_code(report, "SA011")
    assert [f.rule for f in doomed] == ["DoomedSequence"]

    sleeping = _by_code(report, "SA012")
    assert [f.rule for f in sleeping] == ["SleepingRule"]


def test_an_enabling_rule_suppresses_sa012():
    sentinel = dead_rules.build_system()
    sleeping = sentinel.rules.get("SleepingRule")
    sentinel.create_rule(
        "Waker",
        "end WardSensor::observe(float value)",
        action=lambda ctx: sleeping.enable(),
    )
    report = analyze(sentinel)
    assert not _by_code(report, "SA012")


def test_opaque_actions_suppress_sa012():
    """With an unanalyzable action around, nothing is provably dead."""
    sentinel = dead_rules.build_system()
    sentinel.create_rule(
        "Mystery", "end WardSensor::observe(float value)", action=print
    )
    report = analyze(sentinel)
    assert not _by_code(report, "SA012")


# ---------------------------------------------------------- SA020 / SA021
def test_bad_arity_and_unknown_parameter():
    report = analyze(bad_arity.build_system())
    arity = _by_code(report, "SA020")
    assert [f.rule for f in arity] == ["TwoArgCondition"]
    assert arity[0].severity == "error"

    params = _by_code(report, "SA021")
    assert [f.rule for f in params] == ["WrongParam"]
    assert "missing" in params[0].message


# ---------------------------------------------------------------------- SA030
def test_opaque_action_is_noted():
    sentinel = dead_rules.build_system()
    sentinel.create_rule(
        "Mystery", "end WardSensor::observe(float value)", action=print
    )
    report = analyze(sentinel)
    notes = _by_code(report, "SA030")
    assert any(f.rule == "Mystery" for f in notes)


def test_findings_are_ordered_most_severe_first():
    report = analyze(bad_arity.build_system())
    ranks = ["note", "warning", "error"]
    severities = [ranks.index(f.severity) for f in report.findings]
    assert severities == sorted(severities, reverse=True)
