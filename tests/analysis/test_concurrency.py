"""The SA1xx concurrency-hazard family (repro.analysis.concurrency).

Covers the racy/clean fixture twins (golden text + SARIF), the
execution-model gating of each check, the static lock-order relation,
and the ``tools.analyze`` CLI surfaces that ride on it
(``--concurrency``, ``--baseline`` ratchet, ``--lockdep-graph``).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis import analyze, static_order_edges
from repro.core import Coupling, Reactive, Sentinel, class_rule, event_method
from repro.oodb import Database
from repro.oodb.schema import ClassRegistry
from repro.server import RuleClient, RuleServer
from repro.tools import analyze as analyze_cli

from .fixtures import clean_payroll, racy_payroll

FIXTURES_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
GOLDENS_DIR = os.path.join(os.path.dirname(__file__), "goldens")


def _normalize(text: str) -> str:
    return text.replace(FIXTURES_DIR, "<fixtures>")


@pytest.fixture(scope="module")
def racy_report():
    return analyze(
        racy_payroll.build_system(),
        registry=racy_payroll.registry,
        concurrency=True,
    )


class TestFixtureTwins:
    def test_racy_flags_every_sa1xx_code_once(self, racy_report):
        codes = [f.code for f in racy_report.findings]
        for code in ("SA100", "SA101", "SA102", "SA103", "SA104"):
            assert codes.count(code) == 1, (code, codes)

    def test_clean_twin_has_no_findings(self):
        report = analyze(
            clean_payroll.build_system(),
            registry=clean_payroll.registry,
            concurrency=True,
        )
        assert report.findings == []

    def test_racy_matches_golden_text(self, racy_report):
        with open(os.path.join(GOLDENS_DIR, "racy_payroll.txt")) as handle:
            golden = handle.read()
        assert _normalize(racy_report.to_text()) == golden

    def test_racy_matches_golden_sarif(self, racy_report):
        with open(os.path.join(GOLDENS_DIR, "racy_payroll.sarif")) as handle:
            golden = json.load(handle)
        produced = json.loads(_normalize(racy_report.to_sarif_text()))
        assert produced == golden

    def test_sarif_is_2_1_0_with_sa1xx_rules(self, racy_report):
        sarif = racy_report.to_sarif()
        assert sarif["version"] == "2.1.0"
        rule_ids = {
            rule["id"]
            for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"SA100", "SA101", "SA102", "SA103", "SA104"} <= rule_ids

    def test_concurrency_off_by_default(self):
        report = analyze(
            racy_payroll.build_system(), registry=racy_payroll.registry
        )
        assert not any(f.code.startswith("SA1") for f in report.findings)


class TestStaticOrderEdges:
    def test_racy_fixture_orders_both_ways(self, racy_report):
        edges = {
            (a.lower(), b.lower())
            for a, b in static_order_edges(
                racy_report.graph, racy_payroll.registry
            )
        }
        assert ("account", "payroll") in edges
        assert ("payroll", "account") in edges

    def test_clean_fixture_orders_one_way(self):
        report = analyze(
            clean_payroll.build_system(),
            registry=clean_payroll.registry,
            concurrency=True,
        )
        edges = {
            (a.lower(), b.lower())
            for a, b in static_order_edges(
                report.graph, clean_payroll.registry
            )
        }
        assert ("account", "payroll") in edges
        assert ("payroll", "account") not in edges


class Till(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.cash = 0.0
        self.audit_total = 0.0

    @event_method
    def ring(self, amount: float) -> None:
        self.cash += amount


_client = RuleClient("http://127.0.0.1:1")


def _call_server(ctx) -> None:
    _client.invoke(1, "poke")


def _nap(ctx) -> None:
    time.sleep(0.5)


class TestExecutionModelGating:
    """The same hazard text is or is not a finding depending on coupling."""

    def _system(self, coupling_one, coupling_two, action_one, action_two):
        sentinel = Sentinel(adopt_class_rules=False)
        till = Till()
        for name, coupling, action in (
            ("One", coupling_one, action_one),
            ("Two", coupling_two, action_two),
        ):
            rule = sentinel.create_rule(
                name,
                "end Till::ring(float amount)",
                action=action,
                coupling=coupling,
            )
            rule.subscribe_to(till)
        return sentinel

    def test_sa100_requires_both_decoupled(self):
        def write_cash(ctx):
            ctx.source.cash = ctx.source.cash + 1

        racy = self._system(
            Coupling.DECOUPLED, Coupling.DECOUPLED, write_cash, write_cash
        )
        codes = {f.code for f in analyze(racy, concurrency=True).findings}
        assert "SA100" in codes

        inline = self._system(
            Coupling.IMMEDIATE, Coupling.DECOUPLED, write_cash, write_cash
        )
        codes = {f.code for f in analyze(inline, concurrency=True).findings}
        assert "SA100" not in codes  # 2PL serializes the inline side

    def test_sa103_blocking_immediate_not_decoupled(self):
        racy = self._system(
            Coupling.IMMEDIATE, Coupling.DEFERRED, _nap, _nap
        )
        findings = [
            f
            for f in analyze(racy, concurrency=True).findings
            if f.code == "SA103"
        ]
        assert len(findings) == 2  # immediate and deferred both hold locks
        assert all(f.severity == "warning" for f in findings)

        workers = self._system(
            Coupling.DECOUPLED, Coupling.DECOUPLED, _nap, _nap
        )
        codes = {f.code for f in analyze(workers, concurrency=True).findings}
        assert "SA103" not in codes  # worker threads hold no caller locks

    def test_sa103_ruleclient_reentrancy_is_error(self):
        racy = self._system(
            Coupling.IMMEDIATE, Coupling.DECOUPLED, _call_server, _nap
        )
        findings = [
            f
            for f in analyze(racy, concurrency=True).findings
            if f.code == "SA103"
        ]
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "RuleClient" in findings[0].message

    def test_sa104_only_from_decoupled(self):
        sentinel = Sentinel(adopt_class_rules=False)

        def meddle(ctx):
            sentinel.create_rule("X", "end Till::ring(float amount)")

        racy = self._system(
            Coupling.DECOUPLED, Coupling.DECOUPLED, meddle, _nap
        )
        codes = {f.code for f in analyze(racy, concurrency=True).findings}
        assert "SA104" in codes

        inline = self._system(
            Coupling.IMMEDIATE, Coupling.IMMEDIATE, meddle, _nap
        )
        report = analyze(inline, concurrency=True)
        assert "SA104" not in {f.code for f in report.findings}


_shipments: list = []


class TestServedAppAnalysis:
    """``Sentinel.analyze(concurrency=True)`` over a live serve-style
    system — the same shape ``tools.serve`` wires up (locked database,
    adopted class rules, worker pool, HTTP front end)."""

    @pytest.fixture
    def served(self, tmp_path):
        registry = ClassRegistry()

        class Stock(Reactive, registry=registry):
            __rules__ = [
                class_rule(
                    "restock-log",
                    on="end restock(int amount)",
                    action=lambda ctx: _shipments.append(
                        ctx.param("amount")
                    ),
                ),
            ]

            def __init__(self, name: str = "", qty: int = 0) -> None:
                super().__init__()
                self.name = name
                self.qty = qty

            @event_method
            def restock(self, amount: int = 1) -> int:
                self.qty += amount
                return self.qty

        db = Database(str(tmp_path / "db"), registry=registry, locking=True)
        system = Sentinel(db=db)
        system.enable_worker_pool(max_workers=2)
        with system:
            with RuleServer(system):
                yield system, registry
        system.close()

    def test_served_system_analyzes_clean(self, served):
        system, registry = served
        report = system.analyze(concurrency=True, registry=registry)
        # No concurrency hazards.  (Scoped to SA1xx: adopt_class_rules
        # pulls every class rule the process-wide registry accumulated
        # from other test modules, whose classes are foreign to this
        # fixture's registry and would read as dead rules here.)
        assert not any(f.code.startswith("SA1") for f in report.findings)

    def test_seeded_race_is_flagged_on_live_system(self, served):
        system, registry = served

        def tally_one(ctx):
            ctx.source.qty = ctx.source.qty + 1

        def tally_two(ctx):
            ctx.source.qty = ctx.source.qty + 2

        for name, action in (("TallyA", tally_one), ("TallyB", tally_two)):
            system.create_rule(
                name,
                "end Stock::restock(int amount)",
                action=action,
                coupling=Coupling.DECOUPLED,
            )
        report = system.analyze(concurrency=True, registry=registry)
        assert "SA100" in {f.code for f in report.findings}
        assert report.should_fail("warning")


class TestAnalyzeCli:
    RACY = os.path.join(FIXTURES_DIR, "racy_payroll.py")

    def test_concurrency_flag_gates_sa1xx(self, capsys):
        code = analyze_cli.main([self.RACY, "--fail-on", "warning"])
        out = capsys.readouterr().out
        assert "SA100" not in out

        code = analyze_cli.main(
            [self.RACY, "--concurrency", "--fail-on", "warning"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "SA100" in out and "SA104" in out

    def test_baseline_ratchet_suppresses_known_findings(
        self, tmp_path, capsys
    ):
        baseline = str(tmp_path / "baseline.json")
        code = analyze_cli.main(
            [
                self.RACY,
                "--concurrency",
                "--baseline",
                baseline,
                "--write-baseline",
            ]
        )
        assert code == 0
        recorded = json.loads(open(baseline).read())
        assert len(recorded["fingerprints"]) == 6
        capsys.readouterr()

        # With every finding baselined, even --fail-on warning passes.
        code = analyze_cli.main(
            [
                self.RACY,
                "--concurrency",
                "--baseline",
                baseline,
                "--fail-on",
                "warning",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no findings" in out
        assert "6 baselined finding(s) suppressed" in out

    def test_baseline_still_fails_on_new_findings(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        report = analyze(
            racy_payroll.build_system(),
            registry=racy_payroll.registry,
            concurrency=True,
        )
        fingerprints = [
            analyze_cli.finding_fingerprint(f)
            for f in report.findings
            if f.code != "SA100"
        ]
        baseline.write_text(json.dumps({"fingerprints": fingerprints}))
        code = analyze_cli.main(
            [
                self.RACY,
                "--concurrency",
                "--baseline",
                str(baseline),
                "--fail-on",
                "warning",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "SA100" in out and "SA104" not in out

    def test_lockdep_graph_cross_validation(self, tmp_path, capsys):
        observed = tmp_path / "lockdep.json"
        observed.write_text(
            json.dumps(
                {
                    "edges": [
                        {"src": "account", "dst": "payroll", "count": 3},
                        {"src": "payroll", "dst": "account", "count": 1},
                    ],
                    "inversions": [
                        {"first": "account", "second": "payroll", "txn": 7},
                        {"first": "till", "second": "account", "txn": 9},
                    ],
                }
            )
        )
        code = analyze_cli.main(
            [
                self.RACY,
                "--lockdep-graph",
                str(observed),
                "--fail-on",
                "never",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "account <-> payroll: covered by static SA101" in out
        assert "till <-> account: NOT predicted statically" in out
