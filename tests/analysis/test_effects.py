"""Unit tests for read/write/raise-set extraction (repro.analysis.effects)."""

import functools

from repro.analysis import extract_effects
from repro.core import Reactive, event_method
from repro.core.dsl import CompiledAction, CompiledCondition


class EffectsProbe(Reactive):
    @event_method
    def poke(self) -> None:
        pass

    @event_method
    def prod(self) -> None:
        pass


probe = EffectsProbe()


def test_none_yields_empty_effects():
    effects = extract_effects(None)
    assert not effects.reads and not effects.writes
    assert not effects.calls and not effects.opaque


def test_source_attribute_reads_and_writes():
    def action(ctx):
        ctx.source.level = ctx.source.level + ctx.source.offset

    effects = extract_effects(action)
    assert effects.reads == {"level", "offset"}
    assert effects.writes == {"level"}
    assert not effects.opaque


def test_augassign_is_read_and_write():
    def action(ctx):
        ctx.source.count += 1

    effects = extract_effects(action)
    assert "count" in effects.reads and "count" in effects.writes


def test_param_reads_constant_and_dynamic():
    def condition(ctx):
        which = "volume"
        return ctx.param("price") > 1 and ctx.params["size"] and ctx.param(which)

    effects = extract_effects(condition)
    assert {"price", "size", "*"} <= effects.param_reads


def test_source_method_call_classified_as_source():
    effects = extract_effects(lambda ctx: ctx.source.poke())
    assert [(c.method, c.receiver) for c in effects.calls] == [("poke", "source")]


def test_source_alias_tracked_through_assignment():
    def action(ctx):
        node = ctx.source
        node.prod()

    effects = extract_effects(action)
    assert [(c.method, c.receiver) for c in effects.calls] == [("prod", "source")]


def test_resolved_instance_call_gets_class_name():
    effects = extract_effects(lambda ctx: probe.poke())
    assert [(c.method, c.receiver) for c in effects.calls] == [
        ("poke", "EffectsProbe")
    ]


def test_non_reactive_receiver_is_dropped():
    log = []
    effects = extract_effects(lambda ctx: log.append(1))
    assert effects.calls == []
    assert not effects.opaque


def test_unresolvable_receiver_is_unknown():
    def action(ctx, helper_obj=None):
        obj = helper_obj
        obj.poke()

    effects = extract_effects(action)
    assert [(c.method, c.receiver) for c in effects.calls] == [("poke", "unknown")]


def test_explicit_raise_constant_and_dynamic():
    def action(ctx):
        ctx.source.raise_event("overflow", size=3)
        name = "dynamic"
        ctx.source.raise_event(name)

    effects = extract_effects(action)
    assert effects.explicit_raises == {"overflow", "*"}


def test_ctx_rule_receiver_is_rule():
    effects = extract_effects(lambda ctx: ctx.rule.disable())
    assert [(c.method, c.receiver) for c in effects.calls] == [("disable", "Rule")]


def test_builtin_calls_are_not_opaque():
    effects = extract_effects(lambda ctx: print(len(str(ctx))))
    assert not effects.opaque


def test_helper_functions_are_followed_and_merged():
    def helper(ctx):
        ctx.source.poke()

    def action(ctx):
        helper(ctx)

    effects = extract_effects(action)
    assert [(c.method, c.receiver) for c in effects.calls] == [("poke", "source")]


def test_partial_is_unwrapped():
    def action(ctx, extra=0):
        ctx.source.prod()

    effects = extract_effects(functools.partial(action, extra=1))
    assert [(c.method, c.receiver) for c in effects.calls] == [("prod", "source")]


def test_callable_without_source_is_opaque():
    effects = extract_effects(print)
    assert effects.opaque
    assert effects.opaque_reasons


def test_exec_compiled_lambda_is_opaque():
    namespace = {}
    exec("fn = lambda ctx: ctx.source.poke()", namespace)
    effects = extract_effects(namespace["fn"])
    assert effects.opaque


def test_dsl_condition_reads_source_and_free_names():
    condition = CompiledCondition("self.sex == spouse.sex")
    effects = extract_effects(condition)
    assert "sex" in effects.reads
    assert "spouse" in effects.free_names()
    assert not effects.opaque


def test_dsl_action_abort_and_rule_receiver():
    assert extract_effects(CompiledAction("abort")).aborts
    effects = extract_effects(CompiledAction("rule.disable()"))
    assert [(c.method, c.receiver) for c in effects.calls] == [("disable", "Rule")]


def test_dsl_self_method_call_is_source():
    effects = extract_effects(CompiledAction("self.poke()"))
    assert [(c.method, c.receiver) for c in effects.calls] == [("poke", "source")]


def test_ctx_abort_recorded():
    effects = extract_effects(lambda ctx: ctx.abort())
    assert effects.aborts


def test_two_lambdas_on_one_line_resolve_separately():
    # Regression: both lambdas share a first line number; the column
    # positions of the compiled code tell them apart (3.11+).
    pair = (lambda ctx: ctx.source.poke(), lambda ctx: ctx.source.prod())
    first = extract_effects(pair[0])
    second = extract_effects(pair[1])
    if hasattr(pair[0].__code__, "co_positions"):
        assert {c.method for c in first.calls} == {"poke"}
        assert {c.method for c in second.calls} == {"prod"}
    else:  # pragma: no cover - Python < 3.11 conservative union
        assert {c.method for c in first.calls} == {"poke", "prod"}


def test_same_line_lambda_reads_do_not_bleed():
    reader, writer = (lambda ctx: ctx.source.aaa, lambda ctx: ctx.source.bbb)
    if not hasattr(reader.__code__, "co_positions"):
        return  # pragma: no cover - Python < 3.11
    assert extract_effects(reader).reads == {"aaa"}
    assert extract_effects(writer).reads == {"bbb"}


def test_ordered_attr_writes_and_external_calls():
    import time

    def action(ctx):
        ctx.source.total += 1
        ctx.source.audit = "x"
        time.sleep(0.0)

    effects = extract_effects(action)
    assert [(w.receiver, w.attr) for w in effects.attr_writes] == [
        ("source", "total"),
        ("source", "audit"),
    ]
    lines = [w.line for w in effects.attr_writes]
    assert lines == sorted(lines)
    assert [(c.receiver, c.method) for c in effects.ext_calls] == [
        ("time", "sleep")
    ]


def test_from_import_external_call_records_defining_module():
    from time import sleep

    def action(ctx):
        sleep(0.0)

    effects = extract_effects(action)
    assert [(c.receiver, c.method) for c in effects.ext_calls] == [
        ("time", "sleep")
    ]
    assert not effects.opaque
