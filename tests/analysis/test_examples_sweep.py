"""Every example must expose build_system() and analyze without errors.

This is the same sweep the CI ``analyze`` job runs: the default
``--fail-on error`` gate over ``examples/*.py``.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "examples")
)
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_analyzes_clean(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.tools.analyze",
            os.path.join(EXAMPLES_DIR, example),
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 0, (
        f"{example} failed the analyze gate:\n"
        f"{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.startswith("rule-set analysis:")
