"""Tests for triggering-graph construction (repro.analysis.graph)."""

from repro.analysis import build_graph
from repro.core import Reactive, Sentinel, event_method

from .fixtures import cyclic


def test_cyclic_fixture_builds_definite_cycle():
    sentinel = cyclic.build_system()
    graph = build_graph(sentinel)
    assert set(graph.nodes) == {"A", "B"}
    ab = graph.edge_between("A", "B")
    ba = graph.edge_between("B", "A")
    assert ab is not None and ab.definite
    assert ba is not None and ba.definite
    assert "pong" in ab.via and "ping" in ba.via


def test_adjacency_and_successors():
    graph = build_graph(cyclic.build_system())
    adjacency = graph.adjacency()
    assert adjacency["A"] == {"B"} and adjacency["B"] == {"A"}
    assert [e.dst for e in graph.successors("A")] == ["B"]


def test_condition_raises_count_too():
    """A condition invoking a monitored method contributes raise sites."""
    sentinel = Sentinel(adopt_class_rules=False)
    listener = sentinel.create_rule(
        "Listener", "end PingPongNode::pong()", action=lambda ctx: None
    )
    nosy = sentinel.create_rule(
        "Nosy",
        "end PingPongNode::ping()",
        condition=lambda ctx: ctx.source.pong() is None,
        action=lambda ctx: None,
    )
    graph = build_graph(sentinel)
    edge = graph.edge_between("Nosy", "Listener")
    assert edge is not None and edge.definite
    assert listener is not None and nosy is not None


def test_opaque_action_draws_may_edges_to_every_rule():
    sentinel = Sentinel(adopt_class_rules=False)
    sentinel.create_rule("Blind", "end PingPongNode::ping()", action=print)
    sentinel.create_rule(
        "Bystander", "end PingPongNode::pong()", action=lambda ctx: None
    )
    graph = build_graph(sentinel)
    targets = {e.dst for e in graph.successors("Blind")}
    assert targets == {"Blind", "Bystander"}
    assert all(not e.definite for e in graph.successors("Blind"))


def test_unknown_receiver_makes_may_edges():
    sentinel = Sentinel(adopt_class_rules=False)

    def action(ctx, node=None):
        obj = node
        obj.ping()

    sentinel.create_rule("Poker", "end PingPongNode::pong()", action=action)
    sentinel.create_rule(
        "PingListener", "end PingPongNode::ping()", action=lambda ctx: None
    )
    graph = build_graph(sentinel)
    edge = graph.edge_between("Poker", "PingListener")
    assert edge is not None and not edge.definite


def test_subclass_sources_trigger_base_class_leaves():
    """A leaf on a base class matches raises typed to a subclass."""

    class BaseBeacon(Reactive):
        @event_method
        def blink(self) -> None:
            pass

    class ChildBeacon(BaseBeacon):
        pass

    child = ChildBeacon()
    sentinel = Sentinel(adopt_class_rules=False)
    sentinel.create_rule(
        "Flasher", "end ChildBeacon::blink()", action=lambda ctx: child.blink()
    )
    sentinel.create_rule(
        "BaseWatcher", "end BaseBeacon::blink()", action=lambda ctx: None
    )
    graph = build_graph(sentinel)
    assert graph.edge_between("Flasher", "BaseWatcher") is not None


def test_to_dot_renders_nodes_edges_and_disabled_style():
    sentinel = cyclic.build_system()
    sentinel.rules.get("B").disable()
    dot = build_graph(sentinel).to_dot()
    assert dot.startswith("digraph triggering {")
    assert '"A" -> "B"' in dot and '"B" -> "A"' in dot
    assert "style=dashed" in dot  # the disabled node


def test_graph_accepts_plain_rule_iterables():
    sentinel = cyclic.build_system()
    graph = build_graph(list(sentinel.rules))
    assert set(graph.nodes) == {"A", "B"}
