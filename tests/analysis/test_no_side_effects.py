"""The analyzer is pure inspection: it must never fire or mutate anything."""

from repro.analysis import analyze
from repro.core.reactive import Reactive
from repro.core.rules import Rule

from .fixtures import cyclic, dead_rules


def test_analysis_fires_no_rule_and_notifies_no_consumer(monkeypatch):
    sentinel = cyclic.build_system()

    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("the analyzer performed a runtime action")

    monkeypatch.setattr(Rule, "fire", explode)
    monkeypatch.setattr(Reactive, "notify_consumers", explode)
    monkeypatch.setattr(Reactive, "raise_event", explode)

    report = analyze(sentinel)
    assert report.findings  # it really analyzed something


def test_analysis_leaves_counters_and_state_untouched():
    sentinel = dead_rules.build_system()
    rules = list(sentinel.rules)
    before = {
        rule.name: (rule.times_triggered, rule.times_fired, rule.enabled)
        for rule in rules
    }
    stats_before = sentinel.stats()

    analyze(sentinel)
    analyze(sentinel)  # idempotent too

    after = {
        rule.name: (rule.times_triggered, rule.times_fired, rule.enabled)
        for rule in rules
    }
    assert after == before
    assert sentinel.stats() == stats_before


def test_sentinel_facade_returns_same_report_shape():
    sentinel = cyclic.build_system()
    report = sentinel.analyze()
    assert {f.code for f in report.findings} == {
        f.code for f in analyze(sentinel).findings
    }
