"""Tests for report rendering (text/JSON/SARIF/DOT) and the CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import AnalysisReport, Finding, analyze
from repro.tools.analyze import main

from .fixtures import cyclic

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "cyclic.py")


def test_finding_render_format():
    finding = Finding(
        code="SA001",
        severity="error",
        message="boom",
        rule="A",
        file="x.py",
        line=3,
    )
    assert finding.render() == "SA001 error [A]: boom (x.py:3)"
    assert finding.to_dict()["code"] == "SA001"


def test_should_fail_thresholds():
    report = AnalysisReport(
        findings=[Finding(code="SA002", severity="warning", message="w")]
    )
    assert report.should_fail("warning")
    assert report.should_fail("note")
    assert not report.should_fail("error")
    assert not report.should_fail("never")
    with pytest.raises(ValueError):
        report.should_fail("bogus")


def test_counts_and_worst_severity():
    report = analyze(cyclic.build_system())
    counts = report.counts()
    assert counts["error"] == 1
    assert report.worst_severity() == "error"


def test_text_report_header_and_findings():
    text = analyze(cyclic.build_system()).to_text()
    assert text.startswith("rule-set analysis: 2 rules, 2 triggering edges;")
    assert "SA001 error [A]" in text


def test_json_report_roundtrips():
    data = json.loads(analyze(cyclic.build_system()).to_json_text())
    assert data["rules"] == ["A", "B"]
    assert data["counts"]["error"] == 1
    assert {e["src"] for e in data["edges"]} == {"A", "B"}


def test_sarif_is_valid_minimal_profile():
    sarif = analyze(cyclic.build_system()).to_sarif()
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "SA001" in rule_ids and "SA030" in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "SA001" and result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("cyclic.py")
    assert location["region"]["startLine"] > 0


def test_empty_report_renders():
    report = AnalysisReport()
    assert "no findings" in report.to_text()
    assert report.to_dot().startswith("digraph")
    assert report.worst_severity() is None


# ------------------------------------------------------------------ CLI
def test_cli_fails_on_cyclic_fixture(capsys):
    assert main([FIXTURE]) == 1
    out = capsys.readouterr().out
    assert "SA001 error [A]" in out
    assert "A -> B -> A" in out


def test_cli_fail_on_never_passes(capsys):
    assert main([FIXTURE, "--fail-on", "never"]) == 0


def test_cli_json_output(capsys):
    assert main([FIXTURE, "--json", "--fail-on", "never"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["rules"] == ["A", "B"]


def test_cli_writes_sarif_and_dot(tmp_path, capsys):
    sarif_path = tmp_path / "out.sarif"
    dot_path = tmp_path / "out.dot"
    code = main(
        [FIXTURE, "--sarif", str(sarif_path), "--graph", str(dot_path)]
    )
    assert code == 1
    sarif = json.loads(sarif_path.read_text())
    assert sarif["runs"][0]["results"][0]["ruleId"] == "SA001"
    assert '"A" -> "B"' in dot_path.read_text()


def test_cli_rejects_missing_file(capsys):
    assert main(["/nonexistent/app.py"]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_rejects_module_without_build_system(tmp_path, capsys):
    target = tmp_path / "plain.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 2
    assert "build_system" in capsys.readouterr().err


def test_cli_as_subprocess_gates_on_error():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-m", "repro.tools.analyze", FIXTURE],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 1, result.stdout + result.stderr
    assert "A -> B -> A" in result.stdout
