"""Tests for the ADAM baseline model."""

import pytest

from repro.baselines.adam import AdamError, AdamSystem, DbEvent


class Employee:
    def __init__(self, name, salary):
        self.name = name
        self.salary = salary

    def set_salary(self, amount):
        self.salary = amount
        return amount


class Manager(Employee):
    pass


@pytest.fixture
def system():
    adam = AdamSystem()
    adam.register_class(Employee)
    adam.register_class(Manager)
    return adam


class TestEventsAndRules:
    def test_after_rule_fires(self, system):
        log = []
        event = system.new_event("set_salary", when="after")
        system.new_rule(
            event, "Employee",
            action=lambda obj, args: log.append(args["result"]),
        )
        fred = Employee("fred", 10.0)
        system.invoke(fred, "set_salary", 20.0)
        assert log == [20.0]

    def test_before_rule_fires_before_body(self, system):
        order = []
        event = system.new_event("set_salary", when="before")
        system.new_rule(
            event, "Employee",
            action=lambda obj, args: order.append(("rule", obj.salary)),
        )
        fred = Employee("fred", 10.0)
        system.invoke(fred, "set_salary", 20.0)
        order.append(("after", fred.salary))
        assert order == [("rule", 10.0), ("after", 20.0)]

    def test_condition_gates_action(self, system):
        log = []
        event = system.new_event("set_salary")
        system.new_rule(
            event, "Employee",
            condition=lambda obj, args: args["args"][0] > 100,
            action=lambda obj, args: log.append(1),
        )
        fred = Employee("fred", 10.0)
        system.invoke(fred, "set_salary", 50.0)
        system.invoke(fred, "set_salary", 500.0)
        assert log == [1]

    def test_bad_when_rejected(self):
        with pytest.raises(AdamError):
            DbEvent("m", when="during")

    def test_unregistered_class_rejected(self, system):
        class Alien:
            def go(self):
                pass

        with pytest.raises(AdamError):
            system.invoke(Alien(), "go")
        with pytest.raises(AdamError):
            system.new_rule(system.new_event("go"), "Alien")

    def test_delete_rule(self, system):
        log = []
        rule = system.new_rule(
            system.new_event("set_salary"), "Employee",
            action=lambda obj, args: log.append(1),
        )
        fred = Employee("f", 1.0)
        system.invoke(fred, "set_salary", 2.0)
        system.delete_rule(rule)
        system.invoke(fred, "set_salary", 3.0)
        assert log == [1]


class TestRuleInheritance:
    def test_superclass_rule_applies_to_subclass(self, system):
        log = []
        system.new_rule(
            system.new_event("set_salary"), "Employee",
            action=lambda obj, args: log.append(type(obj).__name__),
        )
        system.invoke(Manager("mike", 100.0), "set_salary", 150.0)
        assert log == ["Manager"]

    def test_subclass_rule_does_not_apply_upward(self, system):
        log = []
        system.new_rule(
            system.new_event("set_salary"), "Manager",
            action=lambda obj, args: log.append(1),
        )
        system.invoke(Employee("fred", 1.0), "set_salary", 2.0)
        assert log == []


class TestDisabledFor:
    """ADAM scopes rules to instances *negatively* via disabled-for."""

    def test_disable_for_instance(self, system):
        log = []
        rule = system.new_rule(
            system.new_event("set_salary"), "Employee",
            action=lambda obj, args: log.append(obj.name),
        )
        fred, anne = Employee("fred", 1.0), Employee("anne", 1.0)
        rule.disable_for(fred)
        system.invoke(fred, "set_salary", 2.0)
        system.invoke(anne, "set_salary", 2.0)
        assert log == ["anne"]

    def test_re_enable_for_instance(self, system):
        log = []
        rule = system.new_rule(
            system.new_event("set_salary"), "Employee",
            action=lambda obj, args: log.append(obj.name),
        )
        fred = Employee("fred", 1.0)
        rule.disable_for(fred)
        rule.enable_for(fred)
        system.invoke(fred, "set_salary", 2.0)
        assert log == ["fred"]

    def test_global_disable(self, system):
        log = []
        rule = system.new_rule(
            system.new_event("set_salary"), "Employee",
            action=lambda obj, args: log.append(1),
        )
        rule.enabled = False
        system.invoke(Employee("f", 1.0), "set_salary", 2.0)
        assert log == []


class TestCentralizedCost:
    """The scan-all-rules behaviour the paper contrasts with subscription."""

    def test_every_invocation_scans_all_rules(self, system):
        for _ in range(50):
            system.new_rule(system.new_event("other_method"), "Employee")
        fred = Employee("f", 1.0)
        system.invoke(fred, "set_salary", 2.0)
        # before + after checks each scanned all 50 rules.
        assert system.stats["rules_scanned"] == 100
        assert system.stats["rules_matched"] == 0

    def test_scan_cost_grows_with_rule_count(self, system):
        fred = Employee("f", 1.0)
        system.invoke(fred, "set_salary", 2.0)
        baseline = system.stats["rules_scanned"]
        for _ in range(10):
            system.new_rule(system.new_event("set_salary"), "Employee")
        system.invoke(fred, "set_salary", 3.0)
        assert system.stats["rules_scanned"] == baseline + 2 * 10


class TestPaperFigure13:
    """ADAM's salary check needs *two* rule objects (one per class)."""

    def test_two_rules_required(self, system):
        complaints = []
        event = system.new_event("set_salary", when="after")

        def employee_check(obj, args):
            if obj.manager_salary is not None and obj.salary >= obj.manager_salary:
                complaints.append("Invalid Salary")

        def manager_check(obj, args):
            if any(s >= obj.salary for s in obj.report_salaries):
                complaints.append("Invalid Salary")

        class Emp13(Employee):
            manager_salary = 100.0

        class Mgr13(Employee):
            report_salaries = [50.0]

        system.register_class(Emp13)
        system.register_class(Mgr13)
        system.new_rule(event, "Emp13", action=employee_check)
        system.new_rule(event, "Mgr13", action=manager_check)

        system.invoke(Emp13("fred", 50.0), "set_salary", 150.0)
        system.invoke(Mgr13("mike", 100.0), "set_salary", 40.0)
        assert complaints == ["Invalid Salary", "Invalid Salary"]
        assert system.rule_count() == 2
