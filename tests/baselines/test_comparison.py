"""E7/E14: the §5.1 salary-check rule in all three systems, side by side.

The functional outcome is identical; the *shape* of the solution differs
exactly as the paper argues:

* Ode      — two complementary constraints, declared at class-definition
             time, one per class;
* ADAM     — two integrity-rule objects, one per active-class;
* Sentinel — one rule object, subscribed to instances of both classes.
"""

import pytest

from repro.baselines.adam import AdamSystem
from repro.baselines.ode import Constraint, OdeSystem, OdeViolation
from repro.core import Primitive, Rule
from repro.workloads import Employee, Manager


class TestSalaryCheckEverywhere:
    def test_ode_needs_two_constraints(self):
        system = OdeSystem()

        def set_salary(self, amount):
            self.sal = amount

        system.define_class(
            "emp_cmp",
            attributes=("sal", "mgr"),
            methods={"set_salary": set_salary},
            constraints=[
                Constraint("lt-mgr", lambda o: o.mgr is None or o.sal < o.mgr.sal),
            ],
        )
        system.define_class(
            "mgr_cmp",
            attributes=("sal", "mgr", "emps"),
            base="emp_cmp",
            constraints=[
                Constraint(
                    "gt-emps", lambda o: all(e.sal < o.sal for e in o.emps)
                ),
            ],
        )
        mike = system.new("mgr_cmp", sal=100.0, mgr=None, emps=[])
        fred = system.new("emp_cmp", sal=50.0, mgr=mike)
        mike.emps = [fred]

        with pytest.raises(OdeViolation):
            fred.invoke("set_salary", 500.0)
        with pytest.raises(OdeViolation):
            mike.invoke("set_salary", 1.0)
        # Two separate constraint declarations were required.
        assert len(system.class_of("emp_cmp").constraints) == 1
        assert len(system.class_of("mgr_cmp").constraints) == 1

    def test_adam_needs_two_rules(self):
        system = AdamSystem()

        class EmpA:
            def __init__(self, sal, mgr=None):
                self.sal = sal
                self.mgr = mgr
                self.violations = 0

            def set_salary(self, amount):
                self.sal = amount

        class MgrA(EmpA):
            def __init__(self, sal):
                super().__init__(sal)
                self.emps = []

        system.register_class(EmpA)
        system.register_class(MgrA)
        event = system.new_event("set_salary", when="after")

        def emp_check(obj, args):
            if obj.mgr is not None and obj.sal >= obj.mgr.sal:
                obj.violations += 1

        def mgr_check(obj, args):
            if any(e.sal >= obj.sal for e in obj.emps):
                obj.violations += 1

        system.new_rule(event, "EmpA", action=emp_check)
        system.new_rule(event, "MgrA", action=mgr_check)

        mike = MgrA(100.0)
        fred = EmpA(50.0, mgr=mike)
        mike.emps = [fred]
        system.invoke(fred, "set_salary", 500.0)
        assert fred.violations == 1
        system.invoke(mike, "set_salary", 10.0)
        # Both rules match the manager (inheritance!), emp_check passes
        # because mike has no mgr; mgr_check flags it.
        assert mike.violations == 1
        assert system.rule_count() == 2

    def test_sentinel_needs_one_rule(self, sentinel):
        mike = Manager("Mike", 100.0)
        fred = Employee("Fred", 50.0)
        mike.add_report(fred)
        violations = []
        rule = Rule(
            "SalaryCheck",
            Primitive("end Employee::set_salary(float salary)")
            | Primitive("end Manager::set_salary(float salary)"),
            condition=lambda ctx: fred.salary >= mike.salary,
            action=lambda ctx: violations.append(ctx.source),
        )
        fred.subscribe(rule)
        mike.subscribe(rule)
        fred.set_salary(500.0)
        assert violations == [fred]
        fred.set_salary(50.0)
        mike.set_salary(10.0)
        assert violations[-1] is mike
        # One rule object covers both classes.


class TestFeatureMatrix:
    """E14: the §6/§7 qualitative comparison, executed as probes."""

    def test_runtime_rule_creation(self):
        # Sentinel and ADAM: yes. Ode: requires class redefinition.
        adam = AdamSystem()

        class Target:
            def poke(self):
                pass

        adam.register_class(Target)
        adam.new_rule(adam.new_event("poke"), "Target")  # no class change

        ode = OdeSystem()
        ode.define_class("target", attributes=(), methods={"poke": lambda s: None})
        ode.new("target")
        before = ode.stats["recompiled_instances"]
        ode.redefine_class(
            "target", add_constraints=[Constraint("c", lambda o: True)]
        )
        assert ode.stats["recompiled_instances"] == before + 1  # touched instances

    def test_cross_class_composite_events(self, sentinel):
        """Only Sentinel expresses And(e_classA, e_classB) in one event."""
        event = (
            Primitive("end Employee::set_salary(float s)")
            & Primitive("end Manager::set_salary(float s)")
        )
        fred, mike = Employee("f", 1.0), Manager("m", 2.0)
        rule = Rule("x", event)
        fred.subscribe(rule)
        mike.subscribe(rule)
        fred.set_salary(3.0)
        mike.set_salary(4.0)
        assert rule.times_triggered == 1  # the conjunction spans classes

    def test_rules_as_objects_probe(self):
        # Sentinel rules have identity, can be disabled, persisted.
        rule = Rule("probe", "end Employee::set_salary(float s)")
        assert rule.name == "probe"
        rule.disable()
        assert not rule.enabled
        # Ode constraints are anonymous dataclass rows inside a class:
        constraint = Constraint("c", lambda o: True)
        assert not hasattr(constraint, "enable")
