"""Tests for the Ode baseline model."""

import pytest

from repro.baselines.ode import (
    Constraint,
    OdeSystem,
    OdeViolation,
    Trigger,
)


def employee_methods():
    def set_salary(self, amount):
        self.salary = amount

    return {"set_salary": set_salary}


@pytest.fixture
def system():
    return OdeSystem()


@pytest.fixture
def employee_class(system):
    return system.define_class(
        "employee",
        attributes=("name", "salary"),
        methods=employee_methods(),
        constraints=[
            Constraint("positive-salary", lambda obj: obj.salary >= 0),
        ],
    )


class TestConstraints:
    def test_satisfied_constraint_allows_update(self, system, employee_class):
        fred = system.new("employee", name="fred", salary=10.0)
        fred.invoke("set_salary", 20.0)
        assert fred.salary == 20.0

    def test_hard_violation_undoes_update(self, system, employee_class):
        fred = system.new("employee", name="fred", salary=10.0)
        with pytest.raises(OdeViolation):
            fred.invoke("set_salary", -5.0)
        assert fred.salary == 10.0  # Ode's abort: the operation was undone

    def test_soft_constraint_corrects(self, system):
        system.define_class(
            "capped",
            attributes=("value",),
            methods={"set": lambda self, v: setattr(self, "value", v)},
            constraints=[
                Constraint(
                    "cap",
                    lambda obj: obj.value <= 100,
                    hard=False,
                    handler=lambda obj: setattr(obj, "value", 100),
                ),
            ],
        )
        obj = system.new("capped", value=0)
        obj.invoke("set", 500)
        assert obj.value == 100
        assert system.stats["soft_corrections"] == 1

    def test_soft_without_handler_rejected(self):
        with pytest.raises(ValueError):
            Constraint("bad", lambda o: True, hard=False)

    def test_every_call_checks_every_constraint(self, system, employee_class):
        fred = system.new("employee", name="fred", salary=1.0)
        for _ in range(5):
            fred.invoke("set_salary", 2.0)
        assert system.stats["constraint_checks"] == 5

    def test_inherited_constraints(self, system, employee_class):
        system.define_class(
            "manager",
            attributes=("name", "salary"),
            base="employee",
        )
        mike = system.new("manager", name="mike", salary=5.0)
        with pytest.raises(OdeViolation):
            mike.invoke("set_salary", -1.0)


class TestTriggers:
    def test_trigger_needs_activation(self, system):
        log = []
        system.define_class(
            "sensor",
            attributes=("reading",),
            methods={"set": lambda self, v: setattr(self, "reading", v)},
            triggers=[
                Trigger(
                    "hot",
                    lambda o: o.reading > 50,
                    lambda o: log.append(o.reading),
                ),
            ],
        )
        sensor = system.new("sensor", reading=0)
        sensor.invoke("set", 80)
        assert log == []               # not activated
        sensor.activate_trigger("hot")
        sensor.invoke("set", 90)
        assert log == [90]

    def test_once_trigger_fires_once(self, system):
        log = []
        system.define_class(
            "s2",
            attributes=("reading",),
            methods={"set": lambda self, v: setattr(self, "reading", v)},
            triggers=[
                Trigger(
                    "once-hot",
                    lambda o: o.reading > 50,
                    lambda o: log.append(1),
                    perpetual=False,
                ),
            ],
        )
        sensor = system.new("s2", reading=0)
        sensor.activate_trigger("once-hot")
        sensor.invoke("set", 60)
        sensor.invoke("set", 70)
        assert log == [1]

    def test_perpetual_trigger_keeps_firing(self, system):
        log = []
        system.define_class(
            "s3",
            attributes=("reading",),
            methods={"set": lambda self, v: setattr(self, "reading", v)},
            triggers=[
                Trigger("always", lambda o: o.reading > 0, lambda o: log.append(1)),
            ],
        )
        sensor = system.new("s3", reading=0)
        sensor.activate_trigger("always")
        sensor.invoke("set", 1)
        sensor.invoke("set", 2)
        assert log == [1, 1]

    def test_unknown_trigger_rejected(self, system, employee_class):
        fred = system.new("employee", name="f", salary=1.0)
        with pytest.raises(KeyError):
            fred.activate_trigger("ghost")


class TestClassRedefinition:
    """The expensive path the paper criticizes (benchmark E10)."""

    def test_redefine_adds_constraint_to_live_instances(self, system, employee_class):
        people = [
            system.new("employee", name=f"e{i}", salary=float(i)) for i in range(10)
        ]
        system.redefine_class(
            "employee",
            add_constraints=[Constraint("max", lambda o: o.salary < 1000)],
        )
        assert system.stats["recompiled_instances"] == 10
        with pytest.raises(OdeViolation):
            people[0].invoke("set_salary", 5000.0)

    def test_redefine_validates_existing_instances(self, system, employee_class):
        system.new("employee", name="rich", salary=1_000_000.0)
        with pytest.raises(OdeViolation):
            system.redefine_class(
                "employee",
                add_constraints=[Constraint("max", lambda o: o.salary < 100)],
            )

    def test_duplicate_class_rejected(self, system, employee_class):
        with pytest.raises(ValueError):
            system.define_class("employee", attributes=())

    def test_unknown_method(self, system, employee_class):
        fred = system.new("employee", name="f", salary=1.0)
        with pytest.raises(AttributeError):
            fred.invoke("fly")


class TestPaperFigure11:
    """Ode's salary check: two complementary constraints."""

    def test_two_constraints_needed(self, system):
        def emp_set_salary(self, amount):
            self.sal = amount

        system.define_class(
            "employee11",
            attributes=("sal", "mgr"),
            methods={"set_salary": emp_set_salary},
            constraints=[
                Constraint(
                    "below-manager",
                    lambda o: o.mgr is None or o.sal < o.mgr.sal,
                ),
            ],
        )
        system.define_class(
            "manager11",
            attributes=("sal", "mgr", "emps"),
            base="employee11",
            constraints=[
                Constraint(
                    "above-employees",
                    lambda o: all(e.sal < o.sal for e in (o.emps or [])),
                ),
            ],
        )
        mike = system.new("manager11", sal=100.0, mgr=None, emps=[])
        fred = system.new("employee11", sal=50.0, mgr=mike)
        mike.emps = [fred]

        with pytest.raises(OdeViolation):
            fred.invoke("set_salary", 200.0)   # employee-side constraint
        assert fred.sal == 50.0
        with pytest.raises(OdeViolation):
            mike.invoke("set_salary", 10.0)    # manager-side constraint
        assert mike.sal == 100.0
