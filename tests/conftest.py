"""Shared fixtures for the Sentinel test suite."""

from __future__ import annotations

import pytest

from repro.core import ManualClock, Sentinel, set_clock
from repro.core.runtime import default_scheduler
from repro.oodb import Database


@pytest.fixture
def db(tmp_path):
    """A fresh on-disk database in a temp directory."""
    database = Database(str(tmp_path / "db"))
    yield database
    database.close()


@pytest.fixture
def mem_db():
    """A fresh in-memory database."""
    database = Database()
    yield database
    database.close()


@pytest.fixture
def sentinel():
    """A Sentinel system without a database, active for the test."""
    system = Sentinel(adopt_class_rules=False)
    with system:
        yield system


@pytest.fixture
def sentinel_db(tmp_path):
    """A Sentinel system over an on-disk database."""
    system = Sentinel(path=str(tmp_path / "db"), adopt_class_rules=False)
    with system:
        yield system
    system.close()


@pytest.fixture
def manual_clock():
    """Install a manual clock for the duration of the test."""
    clock = ManualClock(start=1000.0)
    previous = set_clock(clock)
    yield clock
    set_clock(previous)


@pytest.fixture(autouse=True)
def _clean_default_scheduler():
    """Keep the process-default scheduler's state from leaking across tests."""
    scheduler = default_scheduler()
    scheduler.reset_stats()
    scheduler._orphan_deferred.clear()
    yield
    scheduler.reset_stats()
    scheduler._orphan_deferred.clear()
