"""Tests for the ablation implementations (rejected design alternatives)."""

import pytest

from repro.core import EventModifier, Notifiable, Rule
from repro.core.ablation import CentralDispatchTable, DynamicReactive
from repro.workloads import Stock


class DynStock(DynamicReactive):
    __dynamic_event_interface__ = {
        "set_price": "end",
        "audit": "begin|end",
    }

    def __init__(self, symbol, price):
        super().__init__()
        self.symbol = symbol
        self.price = price

    def set_price(self, price):
        self.price = price

    def audit(self):
        return self.price

    def rename(self, symbol):
        self.symbol = symbol


class Recorder(Notifiable):
    def __init__(self):
        super().__init__()
        self.seen = []

    def notify(self, occurrence):
        self.seen.append(occurrence)


class TestDynamicReactive:
    def test_declared_method_raises_events(self, sentinel):
        stock = DynStock("A", 1.0)
        recorder = Recorder()
        stock.subscribe(recorder)
        stock.set_price(2.0)
        assert [o.method for o in recorder.seen] == ["set_price"]
        assert recorder.seen[0].params == {"price": 2.0}
        assert stock.price == 2.0

    def test_both_modifiers(self, sentinel):
        stock = DynStock("A", 1.0)
        recorder = Recorder()
        stock.subscribe(recorder)
        stock.audit()
        assert [o.modifier for o in recorder.seen] == [
            EventModifier.BEGIN,
            EventModifier.END,
        ]

    def test_undeclared_method_silent(self, sentinel):
        stock = DynStock("A", 1.0)
        recorder = Recorder()
        stock.subscribe(recorder)
        stock.rename("B")
        assert recorder.seen == []

    def test_unsubscribed_fast_path(self, sentinel):
        stock = DynStock("A", 1.0)
        stock.set_price(5.0)  # no consumers, no events, no error
        assert stock.price == 5.0

    def test_same_semantics_as_stub_implementation(self, sentinel):
        """Both implementations drive the same rule identically."""
        hits = []
        rule = Rule(
            "r", "end DynStock::set_price(float price)",
            action=lambda ctx: hits.append(ctx.param("price")),
        )
        dynamic = DynStock("D", 1.0)
        dynamic.subscribe(rule)
        dynamic.set_price(9.0)

        stub_rule = Rule(
            "r2", "end Stock::set_price(float price)",
            action=lambda ctx: hits.append(ctx.param("price")),
        )
        stub = Stock("S", 1.0)
        stub.subscribe(stub_rule)
        stub.set_price(9.0)
        assert hits == [9.0, 9.0]


class TestCentralDispatchTable:
    def test_routes_by_method(self, sentinel):
        table = CentralDispatchTable()
        stocks = [Stock(f"S{i}", 1.0) for i in range(3)]
        table.attach_everywhere(stocks)
        recorder = Recorder()
        table.route(recorder, "set_price")
        stocks[0].set_price(2.0)
        stocks[1].get_price()
        assert len(recorder.seen) == 1
        assert recorder.seen[0].method == "set_price"

    def test_source_filter_replaces_subscription(self, sentinel):
        table = CentralDispatchTable()
        stocks = [Stock(f"S{i}", 1.0) for i in range(3)]
        table.attach_everywhere(stocks)
        recorder = Recorder()
        table.route(recorder, "set_price", sources=[stocks[1]])
        for stock in stocks:
            stock.set_price(2.0)
        assert len(recorder.seen) == 1
        assert recorder.seen[0].source is stocks[1]

    def test_every_event_routed_even_when_nobody_cares(self, sentinel):
        """The cost the per-producer design avoids."""
        table = CentralDispatchTable()
        stocks = [Stock(f"S{i}", 1.0) for i in range(5)]
        table.attach_everywhere(stocks)
        for stock in stocks:
            stock.set_price(2.0)
        assert table.routed == 5      # all events reached the table
        assert table.delivered == 0   # nobody was interested

    def test_unroute(self, sentinel):
        table = CentralDispatchTable()
        stock = Stock("S", 1.0)
        stock.subscribe(table)
        recorder = Recorder()
        table.route(recorder, "set_price")
        stock.set_price(2.0)
        table.unroute(recorder, "set_price")
        stock.set_price(3.0)
        assert len(recorder.seen) == 1

    def test_rules_work_through_the_table(self, sentinel):
        table = CentralDispatchTable()
        stock = Stock("S", 1.0)
        stock.subscribe(table)
        hits = []
        rule = Rule(
            "via-table", "end Stock::set_price(float price)",
            action=lambda ctx: hits.append(1),
        )
        table.route(rule, "set_price")
        stock.set_price(2.0)
        assert hits == [1]
