"""Tests for the absolute-time At event."""

from repro.core import EventDetector, Rule
from repro.core.events import At


class Signals:
    def __init__(self):
        self.occurrences = []

    def on_event(self, event, occurrence):
        self.occurrences.append(occurrence)


class TestAt:
    def test_fires_once_when_time_passes(self, manual_clock):
        deadline = At(manual_clock.now() + 100.0)
        signals = Signals()
        deadline.add_listener(signals)
        assert deadline.poll() == 0
        manual_clock.advance(99.0)
        assert deadline.poll() == 0
        manual_clock.advance(2.0)
        assert deadline.poll() == 1
        manual_clock.advance(1000.0)
        assert deadline.poll() == 0  # one-shot
        assert len(signals.occurrences) == 1

    def test_reset_rearms(self, manual_clock):
        deadline = At(manual_clock.now() + 10.0)
        manual_clock.advance(20.0)
        assert deadline.poll() == 1
        deadline.reset()
        assert deadline.poll() == 1  # time is already past: fires again

    def test_detector_drives_it(self, manual_clock):
        detector = EventDetector()
        deadline = detector.register(At(manual_clock.now() + 5.0, name="dl"))
        manual_clock.advance(10.0)
        assert detector.tick() == 1
        assert deadline.signal_count == 1

    def test_rule_on_deadline(self, manual_clock, sentinel):
        fired = []
        deadline = At(manual_clock.now() + 60.0, name="deadline")
        rule = Rule("dl", deadline, action=lambda ctx: fired.append(1))
        manual_clock.advance(61.0)
        deadline.poll()
        assert fired == [1]
        assert rule.times_fired == 1

    def test_signal_carries_target_time(self, manual_clock):
        target = manual_clock.now() + 30.0
        deadline = At(target)
        signals = Signals()
        deadline.add_listener(signals)
        manual_clock.advance(100.0)
        deadline.poll()
        assert signals.occurrences[0].constituents[0].timestamp == target

    def test_immediate_past_time_fires_on_first_poll(self, manual_clock):
        past = At(manual_clock.now() - 5.0)
        assert past.poll() == 1
