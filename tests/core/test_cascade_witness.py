"""Cascade-depth breaches carry a concrete cycle witness.

The witness is the tail of the execution stack closed on the repeated
rule — the same minimal-cycle shape (``["A", "B", "A"]``) the static
analyzer's SA001 finding reports.
"""

import pytest

from repro.core import Reactive, RuleCascadeError, Sentinel, event_method
from repro.core.scheduler import CascadeError
from repro.obs.signals import engine_signals


class Paddle(Reactive):
    @event_method
    def ping(self) -> None:
        pass

    @event_method
    def pong(self) -> None:
        pass


def _wire_ping_pong(sentinel: Sentinel) -> Paddle:
    paddle = Paddle()
    rule_a = sentinel.create_rule(
        "A", "end Paddle::ping()", action=lambda ctx: ctx.source.pong()
    )
    rule_b = sentinel.create_rule(
        "B", "end Paddle::pong()", action=lambda ctx: ctx.source.ping()
    )
    rule_a.subscribe_to(paddle)
    rule_b.subscribe_to(paddle)
    return paddle


def test_rule_cascade_error_is_cascade_error():
    assert RuleCascadeError is CascadeError


def test_max_cascade_depth_property_roundtrip():
    with Sentinel(adopt_class_rules=False) as sentinel:
        sentinel.max_cascade_depth = 7
        assert sentinel.max_cascade_depth == 7
        assert sentinel.scheduler.max_depth == 7
        with pytest.raises(ValueError):
            sentinel.max_cascade_depth = 0


def test_cascade_error_carries_minimal_cycle_witness():
    with Sentinel(adopt_class_rules=False) as sentinel:
        sentinel.max_cascade_depth = 6
        paddle = _wire_ping_pong(sentinel)
        with pytest.raises(RuleCascadeError) as excinfo:
            paddle.ping()
        witness = excinfo.value.witness
        assert witness in (["A", "B", "A"], ["B", "A", "B"])
        assert "cascade:" in str(excinfo.value)
        assert " -> ".join(witness) in str(excinfo.value)


def test_self_loop_witness():
    with Sentinel(adopt_class_rules=False) as sentinel:
        sentinel.max_cascade_depth = 4
        paddle = Paddle()
        rule = sentinel.create_rule(
            "Echo", "end Paddle::ping()", action=lambda ctx: ctx.source.ping()
        )
        rule.subscribe_to(paddle)
        with pytest.raises(RuleCascadeError) as excinfo:
            paddle.ping()
        assert excinfo.value.witness == ["Echo", "Echo"]


def test_sysmon_depth_exceeded_payload_includes_witness():
    events = []

    def sink(kind, payload):
        if kind == "scheduler_depth_exceeded":
            events.append(payload)

    engine_signals.attach(sink)
    try:
        with Sentinel(adopt_class_rules=False) as sentinel:
            sentinel.max_cascade_depth = 5
            paddle = _wire_ping_pong(sentinel)
            with pytest.raises(RuleCascadeError):
                paddle.ping()
    finally:
        engine_signals.detach(sink)
    assert events
    payload = events[-1]
    assert payload["depth"] >= payload["threshold"]
    assert " -> " in payload["witness"]


def test_current_cascade_is_empty_outside_execution():
    with Sentinel(adopt_class_rules=False) as sentinel:
        paddle = _wire_ping_pong(sentinel)
        sentinel.max_cascade_depth = 6
        with pytest.raises(RuleCascadeError):
            paddle.ping()
        # The stack unwound fully despite the error.
        assert sentinel.scheduler.current_cascade() == []
