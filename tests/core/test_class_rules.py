"""Tests for class-level rules (§4.7, Fig 9) and rule inheritance."""

import pytest

from repro.core import Reactive, Sentinel, class_rule, class_rules_of, event_method
from repro.oodb import TransactionAborted

_log: list = []


def fresh_gadget_class(suffix, extra_rules=(), **kwargs):
    """Build a reactive class with a class-level rule, unique per test."""

    namespace = {
        "__init__": lambda self: (Reactive.__init__(self), setattr(self, "uses", 0))[0],
        "use": event_method(lambda self, n=1: setattr(self, "uses", self.uses + n)),
        "__rules__": [
            class_rule(
                f"UseLogger{suffix}",
                on="end use(int n)",
                action=lambda ctx: _log.append((ctx.source, ctx.param("n"))),
                **kwargs,
            ),
            *extra_rules,
        ],
    }
    namespace["use"].__name__ = "use"
    from repro.core.interface import ReactiveMeta

    return ReactiveMeta(f"Gadget{suffix}", (Reactive,), namespace)


class TestClassLevelRules:
    def setup_method(self):
        _log.clear()

    def test_applies_to_every_instance_without_subscription(self, sentinel):
        Gadget = fresh_gadget_class("A")
        first, second = Gadget(), Gadget()
        first.use(1)
        second.use(2)
        assert [(obj is first, n) for obj, n in _log] == [(True, 1), (False, 2)]

    def test_applies_to_subclass_instances(self, sentinel):
        Gadget = fresh_gadget_class("B")

        class SubGadget(Gadget):
            pass

        SubGadget().use(5)
        assert [n for _obj, n in _log] == [5]

    def test_class_rules_of_introspection(self, sentinel):
        Gadget = fresh_gadget_class("C")

        class SubGadget(Gadget):
            pass

        rules = class_rules_of(SubGadget)
        assert "UseLoggerC" in rules

    def test_class_rule_is_first_class(self, sentinel):
        """Footnote 2: declared in the class, but still a rule object."""
        Gadget = fresh_gadget_class("D")
        rule = class_rules_of(Gadget)["UseLoggerD"]
        rule.disable()
        Gadget().use()
        assert _log == []
        rule.enable()
        Gadget().use()
        assert len(_log) == 1

    def test_string_condition_and_action(self, sentinel):
        class Meter(Reactive):
            def __init__(self):
                super().__init__()
                self.level = 0
                self.alarms = 0

            @event_method
            def fill(self, amount):
                self.level += amount

            __rules__ = [
                class_rule(
                    "Overflow",
                    on="end fill(int amount)",
                    condition="self.level > 10",
                    action="self.alarms = self.alarms + 1",
                ),
            ]

        meter = Meter()
        meter.fill(5)
        assert meter.alarms == 0
        meter.fill(20)
        assert meter.alarms == 1

    def test_event_factory_form(self, sentinel):
        from repro.core import Primitive

        built = {}

        def factory(cls):
            event = Primitive(f"end {cls.__name__}::tick()")
            built["event"] = event
            return event

        class Clocked(Reactive):
            @event_method
            def tick(self):
                pass

            __rules__ = [class_rule("T", on=factory)]

        assert built["event"].signature.class_name == "Clocked"

    def test_bad_declaration_type_rejected(self):
        with pytest.raises(TypeError):
            class Broken(Reactive):
                __rules__ = ["not-a-declaration"]


class TestMarriageRule:
    """Figure 9, for real: condition on parameters, abort action."""

    def build_person(self):
        class PersonF9(Reactive):
            def __init__(self, name, sex):
                super().__init__()
                self.name = name
                self.sex = sex
                self.spouse = None

            @event_method(before=True)
            def marry(self, spouse):
                self.spouse = spouse
                spouse.spouse = self

            __rules__ = [
                class_rule(
                    "MarriageF9",
                    on="begin marry(spouse)",
                    condition="self.sex == spouse.sex",
                    action="abort",
                    coupling="immediate",
                ),
            ]

        return PersonF9

    def test_valid_marriage_commits(self, sentinel_db):
        Person = self.build_person()
        sentinel_db._adopt_class_rules()
        db = sentinel_db.db
        with db.transaction():
            alice, bob = Person("Alice", "F"), Person("Bob", "M")
            db.add(alice)
            db.add(bob)
        with db.transaction():
            alice.marry(bob)
        assert alice.spouse is bob

    def test_invalid_marriage_aborts_transaction(self, sentinel_db):
        Person = self.build_person()
        sentinel_db._adopt_class_rules()
        db = sentinel_db.db
        with db.transaction():
            alice, carol = Person("Alice", "F"), Person("Carol", "F")
            db.add(alice)
            db.add(carol)
        with pytest.raises(TransactionAborted):
            with db.transaction():
                alice.marry(carol)
        assert alice.spouse is None
        assert carol.spouse is None

    def test_rule_applies_without_any_subscription_code(self, sentinel):
        Person = self.build_person()
        # No db: the abort surfaces as the exception alone.
        dana, erin = Person("Dana", "F"), Person("Erin", "F")
        with pytest.raises(TransactionAborted):
            dana.marry(erin)
