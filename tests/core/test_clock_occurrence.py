"""Tests for clocks, occurrences, and the runtime scheduler stack."""

import threading

import pytest

from repro.core import (
    CompositeOccurrence,
    EventModifier,
    EventOccurrence,
    ManualClock,
    RuleScheduler,
    SystemClock,
    get_clock,
    set_clock,
)
from repro.core.occurrence import next_sequence
from repro.core.runtime import (
    current_scheduler,
    default_scheduler,
    pop_scheduler,
    push_scheduler,
)


class TestClocks:
    def test_system_clock_moves(self):
        clock = SystemClock()
        assert clock.now() > 0

    def test_manual_clock_is_still(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == clock.now() == 5.0

    def test_manual_advance(self):
        clock = ManualClock()
        assert clock.advance(3.5) == 3.5
        assert clock.now() == 3.5

    def test_manual_set(self):
        clock = ManualClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_time_cannot_go_backwards(self):
        clock = ManualClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set(5.0)

    def test_set_clock_swaps_and_restores(self):
        original = get_clock()
        manual = ManualClock(start=77.0)
        previous = set_clock(manual)
        try:
            assert get_clock() is manual
            occurrence = EventOccurrence(
                class_name="X", method="m", modifier=EventModifier.END
            )
            assert occurrence.timestamp == 77.0
        finally:
            set_clock(previous)
        assert get_clock() is original


class TestSequenceNumbers:
    def test_monotonic(self):
        values = [next_sequence() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_thread_safe(self):
        results = []
        lock = threading.Lock()

        def work():
            local = [next_sequence() for _ in range(300)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 1200


class TestOccurrences:
    def make(self, method="m", **kwargs):
        return EventOccurrence(
            class_name="C", method=method, modifier=EventModifier.END, **kwargs
        )

    def test_constituents_of_primitive_is_self(self):
        occurrence = self.make()
        assert occurrence.constituents == (occurrence,)

    def test_parameters_copy(self):
        occurrence = self.make(params={"a": 1})
        params = occurrence.parameters()
        params["a"] = 99
        assert occurrence.params["a"] == 1

    def test_signature_text(self):
        assert self.make().signature_text == "end C::m"

    def test_matches_class_through_mro(self):
        occurrence = self.make(class_names=("C", "Base"))
        assert occurrence.matches_class("Base")
        assert not occurrence.matches_class("Other")

    def test_composite_of_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeOccurrence.of("e", ())

    def test_composite_takes_terminator_seq_and_time(self):
        first = self.make()
        second = self.make()
        composite = CompositeOccurrence.of("both", (first, second))
        assert composite.seq == second.seq
        assert composite.timestamp == second.timestamp

    def test_composite_flattens_nested(self):
        a, b, c = self.make(), self.make(), self.make()
        inner = CompositeOccurrence.of("inner", (a, b))
        outer = CompositeOccurrence.of("outer", (inner, c))
        assert outer.constituents == (a, b, c)

    def test_composite_parameters_later_wins(self):
        a = self.make(params={"x": 1, "y": 1})
        b = self.make(params={"x": 2})
        composite = CompositeOccurrence.of("e", (a, b))
        assert composite.parameters() == {"x": 2, "y": 1}

    def test_sources_deduplicated(self):
        source = object()
        a = self.make(source=source)
        b = self.make(source=source)
        composite = CompositeOccurrence.of("e", (a, b))
        assert composite.sources() == [source]

    def test_modifier_parse(self):
        assert EventModifier.parse("begin") is EventModifier.BEGIN
        assert EventModifier.parse("BOM") is EventModifier.BEGIN
        assert EventModifier.parse("eom") is EventModifier.END
        with pytest.raises(ValueError):
            EventModifier.parse("middle")

    def test_str_forms(self):
        occurrence = self.make()
        assert "end C::m" in str(occurrence)
        composite = CompositeOccurrence.of("combo", (occurrence,))
        assert "combo" in str(composite)


class TestRuntimeStack:
    def test_default_scheduler_singleton(self):
        assert default_scheduler() is default_scheduler()

    def test_push_pop(self):
        scheduler = RuleScheduler()
        push_scheduler(scheduler)
        try:
            assert current_scheduler() is scheduler
        finally:
            pop_scheduler(scheduler)
        assert current_scheduler() is not scheduler

    def test_nested_push(self):
        outer, inner = RuleScheduler(), RuleScheduler()
        push_scheduler(outer)
        push_scheduler(inner)
        assert current_scheduler() is inner
        pop_scheduler(inner)
        assert current_scheduler() is outer
        pop_scheduler(outer)

    def test_pop_unknown_is_noop(self):
        pop_scheduler(RuleScheduler())

    def test_pop_removes_most_recent_instance(self):
        scheduler = RuleScheduler()
        push_scheduler(scheduler)
        push_scheduler(scheduler)
        pop_scheduler(scheduler)
        assert current_scheduler() is scheduler
        pop_scheduler(scheduler)
