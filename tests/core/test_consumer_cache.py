"""Tests for the consumer-snapshot cache and its invalidation triggers.

The hot path caches each reactive object's merged consumer list (instance
subscribers + class-level rules up the MRO) and serves event deliveries
from the cached tuple.  These tests pin down the invalidation contract:
every way the consumer set can change — instance subscribe/unsubscribe,
class-rule list mutation, rule enable/disable, rebuild after storage
materialization — must be observed by the *next* ``notify_consumers``.
"""

import pytest

from repro.core import IdentitySet, Notifiable, Reactive, Rule, event_method
from repro.core.generations import ClassConsumerList, class_generation
from repro.obs.metrics import pipeline_stats, reset_pipeline_stats
from repro.workloads import Stock


class Producer(Reactive):
    @event_method
    def ping(self, n=0):
        return n


class Consumer(Notifiable):
    def __init__(self):
        super().__init__()
        self.count = 0

    def notify(self, occurrence):
        self.count += 1
        self.record(occurrence)


class TestIdentitySet:
    def test_add_and_contains_by_identity(self):
        items = IdentitySet()
        a, b = [1], [1]  # equal but distinct
        assert items.add(a)
        assert items.add(b)
        assert a in items and b in items
        assert len(items) == 2

    def test_add_is_idempotent_and_reports_change(self):
        items = IdentitySet()
        a = object()
        assert items.add(a)
        assert not items.add(a)
        assert len(items) == 1

    def test_discard_reports_change(self):
        items = IdentitySet()
        a = object()
        items.add(a)
        assert items.discard(a)
        assert not items.discard(a)
        assert a not in items

    def test_insertion_order_preserved(self):
        items = IdentitySet()
        objs = [object() for _ in range(5)]
        for obj in objs:
            items.add(obj)
        items.discard(objs[2])
        assert items.as_list() == [objs[0], objs[1], objs[3], objs[4]]

    def test_as_list_is_a_copy(self):
        items = IdentitySet()
        items.add(object())
        listed = items.as_list()
        listed.clear()
        assert len(items) == 1


class TestInstanceCacheInvalidation:
    def test_subscribe_mid_stream_observed(self):
        producer, early, late = Producer(), Consumer(), Consumer()
        producer.subscribe(early)
        producer.ping()  # warms the cache
        producer.subscribe(late)
        producer.ping()
        assert early.count == 2
        assert late.count == 1

    def test_unsubscribe_mid_stream_observed(self):
        producer, staying, leaving = Producer(), Consumer(), Consumer()
        producer.subscribe(staying)
        producer.subscribe(leaving)
        producer.ping()
        producer.unsubscribe(leaving)
        producer.ping()
        assert staying.count == 2
        assert leaving.count == 1

    def test_subscription_generation_counts_changes(self):
        producer, consumer = Producer(), Consumer()
        before = producer.subscription_generation()
        producer.subscribe(consumer)
        producer.subscribe(consumer)  # idempotent: no second bump
        producer.unsubscribe(consumer)
        assert producer.subscription_generation() == before + 2

    def test_warm_stream_hits_cache(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        producer.ping()  # cold: builds the snapshot
        reset_pipeline_stats()
        for _ in range(10):
            producer.ping()
        assert pipeline_stats.consumer_cache_hits >= 10
        assert pipeline_stats.consumer_cache_misses == 0

    def test_materialized_instance_rebuilds_consumers(self):
        # Objects loaded from storage skip __init__ entirely (fetch uses
        # __new__ and then assigns the persistence fields); subscription
        # and delivery must still work through the lazy-rebuild path.
        producer = Producer.__new__(Producer)
        object.__setattr__(producer, "_p_oid", None)
        object.__setattr__(producer, "_p_db", None)
        consumer = Consumer()
        assert not producer.has_consumers()
        producer.subscribe(consumer)
        producer.ping()
        assert consumer.count == 1


class TestClassConsumerInvalidation:
    def test_class_consumer_list_bumps_generation(self):
        before = class_generation()
        Producer._class_consumers.append(None)
        Producer._class_consumers.pop()
        assert class_generation() == before + 2

    def test_reactive_classes_get_bumping_list(self):
        assert isinstance(Producer._class_consumers, ClassConsumerList)
        assert isinstance(Stock._class_consumers, ClassConsumerList)

    def test_class_consumer_added_between_events_observed(self, sentinel):
        class Gadget(Reactive):
            @event_method
            def poke(self):
                pass

        gadget, instance_consumer, class_consumer = Gadget(), Consumer(), Consumer()
        gadget.subscribe(instance_consumer)
        gadget.poke()  # warm cache without the class consumer
        Gadget._class_consumers.append(class_consumer)
        try:
            gadget.poke()
        finally:
            Gadget._class_consumers.remove(class_consumer)
        assert instance_consumer.count == 2
        assert class_consumer.count == 1

    def test_class_consumer_removed_between_events_observed(self, sentinel):
        class Widget(Reactive):
            @event_method
            def poke(self):
                pass

        widget, class_consumer = Widget(), Consumer()
        Widget._class_consumers.append(class_consumer)
        widget.poke()
        Widget._class_consumers.remove(class_consumer)
        widget.poke()
        assert class_consumer.count == 1

    def test_rule_disable_enable_between_events(self, sentinel):
        fired = []
        rule = Rule(
            "cache_toggle",
            "end Stock::set_price(float price)",
            action=lambda ctx: fired.append(ctx.param("price")),
        )
        stock = Stock("IBM", 100.0)
        stock.subscribe(rule)
        stock.set_price(1.0)
        rule.disable()
        stock.set_price(2.0)
        rule.enable()
        stock.set_price(3.0)
        assert fired == [1.0, 3.0]

    def test_enable_disable_bump_class_generation(self, sentinel):
        rule = Rule(
            "gen_bump",
            "end Stock::set_price(float price)",
            action=lambda ctx: None,
        )
        before = class_generation()
        rule.disable()
        rule.enable()
        assert class_generation() == before + 2


class TestPipelineStats:
    def test_reset_zeroes_counters(self):
        pipeline_stats.consumer_cache_hits += 5
        reset_pipeline_stats()
        assert pipeline_stats.consumer_cache_hits == 0

    def test_snapshot_is_plain_dict(self):
        reset_pipeline_stats()
        snap = pipeline_stats.snapshot()
        assert snap["consumer_cache_hits"] == 0
        assert "group_commits" in snap
        assert "serializer_fast_objects" in snap

    def test_invalidation_counter_tracks_subscribes(self):
        producer, consumer = Producer(), Consumer()
        reset_pipeline_stats()
        producer.subscribe(consumer)
        producer.unsubscribe(consumer)
        assert pipeline_stats.consumer_cache_invalidations == 2
