"""Tests for parameter contexts: recent, chronicle, continuous, cumulative."""

import pytest

from repro.core import (
    Conjunction,
    ParameterContext,
    Primitive,
    Reactive,
    Sequence,
    event_method,
)


class Feed(Reactive):
    @event_method
    def left(self, tag=""):
        return tag

    @event_method
    def right(self, tag=""):
        return tag


class Signals:
    def __init__(self):
        self.occurrences = []

    def on_event(self, event, occurrence):
        self.occurrences.append(occurrence)


def build(operator_cls, context):
    left = Primitive("end Feed::left(str tag)")
    right = Primitive("end Feed::right(str tag)")
    event = operator_cls(left, right, context=context)
    feed = Feed()
    feed.subscribe(event)
    signals = Signals()
    event.add_listener(signals)
    return feed, signals


def tags(occurrence):
    return [c.params["tag"] for c in occurrence.constituents]


class TestContextParsing:
    def test_parse(self):
        assert ParameterContext.parse("recent") is ParameterContext.RECENT
        assert ParameterContext.parse(ParameterContext.CHRONICLE) is (
            ParameterContext.CHRONICLE
        )

    def test_bad_context(self):
        with pytest.raises(ValueError):
            ParameterContext.parse("futuristic")


class TestConjunctionContexts:
    def test_chronicle_fifo_consumption(self):
        feed, signals = build(Conjunction, "chronicle")
        feed.left("l1")
        feed.left("l2")
        feed.right("r1")
        feed.right("r2")
        assert len(signals.occurrences) == 2
        assert sorted(tags(signals.occurrences[0])) == ["l1", "r1"]
        assert sorted(tags(signals.occurrences[1])) == ["l2", "r2"]

    def test_recent_reuses_latest(self):
        feed, signals = build(Conjunction, "recent")
        feed.left("l1")
        feed.left("l2")          # replaces l1
        feed.right("r1")
        assert len(signals.occurrences) == 1
        assert sorted(tags(signals.occurrences[0])) == ["l2", "r1"]
        feed.right("r2")         # l2 still usable in recent context
        assert len(signals.occurrences) == 2
        assert sorted(tags(signals.occurrences[1])) == ["l2", "r2"]

    def test_continuous_terminates_all_open(self):
        feed, signals = build(Conjunction, "continuous")
        feed.left("l1")
        feed.left("l2")
        feed.right("r1")         # terminates both windows at once
        assert len(signals.occurrences) == 2
        initiators = {tags(o)[0] for o in signals.occurrences}
        assert initiators == {"l1", "l2"}
        feed.right("r2")         # everything consumed: nothing left
        assert len(signals.occurrences) == 2

    def test_cumulative_folds_everything(self):
        feed, signals = build(Conjunction, "cumulative")
        feed.left("l1")
        feed.left("l2")
        feed.right("r1")
        assert len(signals.occurrences) == 1
        assert sorted(tags(signals.occurrences[0])) == ["l1", "l2", "r1"]
        feed.right("r2")
        assert len(signals.occurrences) == 1  # buffers were drained


class TestSequenceContexts:
    def test_chronicle_oldest_initiator(self):
        feed, signals = build(Sequence, "chronicle")
        feed.left("l1")
        feed.left("l2")
        feed.right("r1")
        assert tags(signals.occurrences[0]) == ["l1", "r1"]
        feed.right("r2")
        assert tags(signals.occurrences[1]) == ["l2", "r2"]

    def test_recent_latest_initiator_not_consumed(self):
        feed, signals = build(Sequence, "recent")
        feed.left("l1")
        feed.left("l2")
        feed.right("r1")
        assert tags(signals.occurrences[0]) == ["l2", "r1"]
        feed.right("r2")
        assert tags(signals.occurrences[1]) == ["l2", "r2"]

    def test_continuous_all_initiators(self):
        feed, signals = build(Sequence, "continuous")
        feed.left("l1")
        feed.left("l2")
        feed.right("r1")
        assert len(signals.occurrences) == 2
        assert {tags(o)[0] for o in signals.occurrences} == {"l1", "l2"}
        feed.right("r2")
        assert len(signals.occurrences) == 2

    def test_cumulative_folds_initiators(self):
        feed, signals = build(Sequence, "cumulative")
        feed.left("l1")
        feed.left("l2")
        feed.right("r1")
        assert len(signals.occurrences) == 1
        assert tags(signals.occurrences[0]) == ["l1", "l2", "r1"]

    def test_right_before_left_never_pairs_in_any_context(self):
        for context in ParameterContext:
            feed, signals = build(Sequence, context)
            feed.right("r")
            feed.left("l")
            assert signals.occurrences == [], context
