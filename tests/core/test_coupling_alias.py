"""The "detached" spelling is a first-class alias of decoupled (§4.4)."""

import pytest

from repro.core import Coupling, Sentinel
from tests.analysis.fixtures.cyclic import PingPongNode


def test_detached_member_is_decoupled():
    assert Coupling.DETACHED is Coupling.DECOUPLED
    assert Coupling.DETACHED.value == "decoupled"


def test_parse_accepts_both_spellings():
    assert Coupling.parse("detached") is Coupling.DECOUPLED
    assert Coupling.parse("DETACHED") is Coupling.DECOUPLED
    assert Coupling.parse("decoupled") is Coupling.DECOUPLED
    assert Coupling.parse(Coupling.DETACHED) is Coupling.DECOUPLED


def test_alias_does_not_add_a_fourth_mode():
    assert [c.value for c in Coupling] == ["immediate", "deferred", "decoupled"]


def test_parse_error_mentions_the_alias():
    with pytest.raises(ValueError, match="detached"):
        Coupling.parse("sideways")


def test_rule_created_with_detached_runs_decoupled():
    with Sentinel(adopt_class_rules=False) as sentinel:
        node = PingPongNode()
        ran = []
        rule = sentinel.create_rule(
            "DetachedRule",
            "end PingPongNode::ping()",
            action=lambda ctx: ran.append(ctx.source.hits),
            coupling="detached",
        )
        rule.subscribe_to(node)
        assert rule.coupling is Coupling.DECOUPLED
        assert "decoupled" in repr(rule)
        node.ping()
        assert ran  # no transaction open: runs right after the signal
        assert sentinel.stats()["decoupled"] == 1
