"""§3.3/§3.4 — the design alternatives the paper weighs, demonstrated.

The paper argues events and rules should be *objects* by comparing the
alternatives (events as expressions, events as rule attributes; rules as
declarations, rules as data members).  These tests demonstrate the
concrete capability differences the paper claims, using our
implementation for the "as objects" side and minimal emulations for the
alternatives.
"""

import pytest

from repro.core import (
    Conjunction,
    Disjunction,
    Notifiable,
    Primitive,
    Reactive,
    Rule,
    event_method,
)
from repro.workloads import Employee, Manager, Stock


class TestEventsAsObjects:
    """§3.3, third alternative — what being an object buys."""

    def test_events_have_state(self, sentinel):
        """'The state information ... includes the occurrence of the event
        and the parameters computed when an event is raised.'"""
        event = Primitive("end Stock::set_price(float price)")
        stock = Stock("S", 1.0)
        stock.subscribe(event)
        stock.set_price(9.0)
        assert event.raised
        assert event.last_occurrence().params == {"price": 9.0}

    def test_events_shared_between_rules(self, sentinel):
        """One event object can trigger several rules — no duplication."""
        shared = Primitive("end Stock::set_price(float price)")
        hits = []
        rule_a = Rule("a", shared, action=lambda ctx: hits.append("a"))
        rule_b = Rule("b", shared, action=lambda ctx: hits.append("b"))
        stock = Stock("S", 1.0)
        stock.subscribe(rule_a)
        stock.subscribe(rule_b)
        stock.set_price(2.0)
        assert sorted(hits) == ["a", "b"]

    def test_events_modified_dynamically(self, sentinel):
        """Events can be disabled/enabled at runtime like any object."""
        event = Primitive("end Stock::set_price(float price)")
        stock = Stock("S", 1.0)
        stock.subscribe(event)
        event.disable()
        stock.set_price(2.0)
        assert not event.raised
        event.enable()
        stock.set_price(3.0)
        assert event.raised

    def test_events_span_distinct_classes(self, sentinel):
        """'Events spanning distinct classes can be expressed.'"""
        cross = Conjunction(
            Primitive("end Stock::set_price(float price)"),
            Primitive("end Employee::set_salary(float salary)"),
        )
        stock, employee = Stock("S", 1.0), Employee("E", 1.0)
        stock.subscribe(cross)
        employee.subscribe(cross)
        stock.set_price(2.0)
        employee.set_salary(3.0)
        assert cross.raised

    def test_events_as_expressions_cannot_span_classes(self, sentinel):
        """The 'events as expressions' emulation: an expression evaluated
        inside one class's method wrapper sees only that class's state —
        there is no object to carry a second class's half of the pattern."""

        class ExpressionEventObj(Reactive):
            # The 'event expression' is just a per-call predicate: it has
            # no storage, so a cross-object conjunction is inexpressible.
            def __init__(self):
                super().__init__()
                self.fired = []

            @event_method
            def poke(self, n):
                pass

        consumer_state = []

        class ExprConsumer(Notifiable):
            def notify(self, occurrence):
                # stateless expression: evaluate and forget
                if occurrence.params.get("n", 0) > 5:
                    consumer_state.append(occurrence.seq)

        obj = ExpressionEventObj()
        obj.subscribe(ExprConsumer())
        obj.poke(10)
        obj.poke(1)
        assert len(consumer_state) == 1
        # The point: nothing persisted between notifications — the
        # object-based Conjunction above needed exactly that storage.


class TestRulesAsObjects:
    """§3.4, the alternatives for rule specification."""

    def test_rule_reuse_across_classes(self, sentinel):
        """'A rule that ensures an employer's salary is always less than
        his/her manager's salary need[s] to be declared twice' in the
        declarative approach — here once."""
        rule = Rule(
            "shared-salary-check",
            Primitive("end Employee::set_salary(float salary)")
            | Primitive("end Manager::set_salary(float salary)"),
        )
        fred, mike = Employee("f", 1.0), Manager("m", 2.0)
        fred.subscribe(rule)
        mike.subscribe(rule)
        fred.set_salary(3.0)
        mike.set_salary(4.0)
        # mike is both Employee and Manager, so his update raises both
        # primitives of the disjunction: 1 (fred) + 2 (mike) triggers.
        assert rule.times_triggered == 3

    def test_rule_identity_allows_association(self, sentinel):
        """Rules have object identity, so other objects can reference
        them — e.g. a registry, or another rule monitoring them."""
        rule = Rule("identified", "end Stock::set_price(float price)")
        holder = {"the_rule": rule}
        assert holder["the_rule"] is rule

    def test_rule_subclassing(self, sentinel):
        """'It is possible to create subclasses of the rule class' —
        e.g. Ode's hard/soft constraints as Rule subclasses."""

        class HardConstraint(Rule):
            def fire(self, occurrence):
                context_fired = super().fire(occurrence)
                self.kind = "hard"
                return context_fired

        class SoftConstraint(Rule):
            def fire(self, occurrence):
                self.kind = "soft"
                return super().fire(occurrence)

        hard = HardConstraint("h", "end Stock::set_price(float price)")
        soft = SoftConstraint("s", "end Stock::set_price(float price)")
        stock = Stock("S", 1.0)
        stock.subscribe(hard)
        stock.subscribe(soft)
        stock.set_price(2.0)
        assert hard.kind == "hard"
        assert soft.kind == "soft"
        assert isinstance(hard, Rule)

    def test_rule_as_data_member_has_no_inheritance(self, sentinel):
        """The 'rules as data members' alternative: values of data members
        are not inherited, so a subclass instance starts without them."""

        class WithRuleMember(Reactive):
            def __init__(self):
                super().__init__()
                self.my_rule = Rule(
                    "member-rule", "end Stock::set_price(float price)"
                )

        class Sub(WithRuleMember):
            def __init__(self):
                # A subclass that builds itself differently loses the rule
                # — nothing in the *class* carries it (unlike class rules).
                Reactive.__init__(self)

        assert hasattr(WithRuleMember(), "my_rule")
        assert not hasattr(Sub(), "my_rule")

    def test_class_rules_are_inherited_unlike_data_members(self, sentinel):
        """Sentinel's class-level rules live on the class and reach
        subclass instances (contrast with the previous test)."""
        from repro.core import class_rule

        log = []

        class Declared(Reactive):
            @event_method
            def act(self):
                pass

            __rules__ = [
                class_rule(
                    "DeclaredRule", on="end act()",
                    action=lambda ctx: log.append(type(ctx.source).__name__),
                ),
            ]

        class DeclaredSub(Declared):
            pass

        DeclaredSub().act()
        assert log == ["DeclaredSub"]
