"""Tests for the event detector."""

from repro.core import (
    Conjunction,
    EventDetector,
    Periodic,
    Primitive,
    Reactive,
    Sequence,
    event_method,
)


class Sensor(Reactive):
    @event_method
    def high(self):
        pass

    @event_method
    def low(self):
        pass


class Signals:
    def __init__(self):
        self.occurrences = []

    def on_event(self, event, occurrence):
        self.occurrences.append(occurrence)


class TestRegistration:
    def test_register_returns_event(self):
        detector = EventDetector()
        event = Primitive("end Sensor::high()")
        assert detector.register(event) is event
        assert detector.roots() == [event]

    def test_register_idempotent(self):
        detector = EventDetector()
        event = Primitive("end Sensor::high()")
        detector.register(event)
        detector.register(event)
        assert len(detector.roots()) == 1

    def test_unregister(self):
        detector = EventDetector()
        event = Primitive("end Sensor::high()")
        detector.register(event)
        detector.unregister(event)
        assert detector.roots() == []


class TestDetection:
    def test_feed_routes_to_matching_leaves(self):
        detector = EventDetector()
        high = detector.register(Primitive("end Sensor::high()"))
        low = detector.register(Primitive("end Sensor::low()"))
        sensor = Sensor()
        sensor.subscribe(detector)
        sensor.high()
        assert high.signal_count == 1
        assert low.signal_count == 0
        # Only one leaf was touched by the feed (the index worked).
        assert detector.stats.leaf_deliveries == 1

    def test_composite_detection_through_detector(self):
        detector = EventDetector()
        both = detector.register(
            Conjunction(
                Primitive("end Sensor::high()"),
                Primitive("end Sensor::low()"),
            )
        )
        signals = Signals()
        both.add_listener(signals)
        sensor = Sensor()
        sensor.subscribe(detector)
        sensor.high()
        sensor.low()
        assert len(signals.occurrences) == 1

    def test_shared_stream_multiple_graphs(self):
        detector = EventDetector()
        sequence = detector.register(
            Sequence(
                Primitive("end Sensor::high()"),
                Primitive("end Sensor::low()"),
            )
        )
        conjunction = detector.register(
            Conjunction(
                Primitive("end Sensor::low()"),
                Primitive("end Sensor::high()"),
            )
        )
        sensor = Sensor()
        sensor.subscribe(detector)
        sensor.high()
        sensor.low()
        assert sequence.signal_count == 1
        assert conjunction.signal_count == 1

    def test_signal_accounting(self):
        detector = EventDetector()
        event = detector.register(Primitive("end Sensor::high()"))
        event.name = "spike"
        sensor = Sensor()
        sensor.subscribe(detector)
        sensor.high()
        sensor.high()
        assert detector.signals_of("spike") == 2
        assert detector.signals_of(event) == 2
        assert detector.stats.fed == 2

    def test_pollables_driven_by_tick(self, manual_clock):
        detector = EventDetector()
        start = Primitive("end Sensor::high()")
        stop = Primitive("end Sensor::low()")
        periodic = detector.register(Periodic(start, 10.0, stop))
        sensor = Sensor()
        sensor.subscribe(detector)
        sensor.high()
        manual_clock.advance(35.0)
        emitted = detector.tick()
        assert emitted == 3
        assert periodic.signal_count == 3

    def test_feed_polls_pollables(self, manual_clock):
        detector = EventDetector()
        start = Primitive("end Sensor::high()")
        stop = Primitive("end Sensor::low()")
        periodic = detector.register(Periodic(start, 10.0, stop))
        sensor = Sensor()
        sensor.subscribe(detector)
        sensor.high()
        manual_clock.advance(25.0)
        sensor.high()  # the feed itself polls: back-ticks are emitted
        assert periodic.signal_count == 2
