"""Tests for the event-expression and rule-spec DSL."""

import pytest

from repro.core import (
    Conjunction,
    Disjunction,
    Primitive,
    Reactive,
    Sequence,
    event_method,
)
from repro.core.dsl import (
    CompiledAction,
    CompiledCondition,
    DslError,
    compile_action,
    compile_condition,
    parse_event,
    parse_rule,
)


class Valve(Reactive):
    def __init__(self):
        super().__init__()
        self.pressure = 0

    @event_method
    def open(self, psi=0):
        self.pressure = psi

    @event_method(before=True)
    def close(self):
        self.pressure = 0


class TestEventExpressions:
    def test_single_signature(self):
        event = parse_event("end Valve::open(int psi)")
        assert isinstance(event, Primitive)
        assert event.signature.method == "open"

    def test_conjunction_keyword_and_symbol(self):
        for text in (
            "end A::x() and end B::y()",
            "end A::x() & end B::y()",
            "end A::x() && end B::y()",
        ):
            event = parse_event(text)
            assert isinstance(event, Conjunction), text

    def test_disjunction(self):
        for text in ("end A::x() or end B::y()", "end A::x() | end B::y()"):
            assert isinstance(parse_event(text), Disjunction), text

    def test_sequence_forms(self):
        for text in (
            "end A::x() then end B::y()",
            "end A::x() ; end B::y()",
            "end A::x() >> end B::y()",
        ):
            assert isinstance(parse_event(text), Sequence), text

    def test_precedence_and_over_or(self):
        event = parse_event("end A::x() or end B::y() and end C::z()")
        assert isinstance(event, Disjunction)
        assert isinstance(event.children()[1], Conjunction)

    def test_precedence_or_over_seq(self):
        event = parse_event("end A::x() then end B::y() or end C::z()")
        assert isinstance(event, Sequence)
        assert isinstance(event.children()[1], Disjunction)

    def test_parentheses_override(self):
        event = parse_event("(end A::x() or end B::y()) and end C::z()")
        assert isinstance(event, Conjunction)
        assert isinstance(event.children()[0], Disjunction)

    def test_nary_flattening(self):
        event = parse_event("end A::x() and end B::y() and end C::z()")
        assert isinstance(event, Conjunction)
        assert len(event.children()) == 3

    def test_default_class_qualifies_bare_signature(self):
        event = parse_event("end open(int psi)", default_class="Valve")
        assert event.signature.class_name == "Valve"

    def test_bare_signature_without_default_rejected(self):
        with pytest.raises(DslError):
            parse_event("end open(int psi)")

    def test_garbage_rejected(self):
        for bad in ("", "fnord", "end A::x() or", "(end A::x()", "end A::x() blah"):
            with pytest.raises(DslError):
                parse_event(bad)

    def test_detection_through_parsed_tree(self):
        event = parse_event(
            "end Valve::open(int psi) then begin Valve::close()"
        )
        signals = []

        class Listener:
            def on_event(self, ev, occ):
                signals.append(occ)

        event.add_listener(Listener())
        valve = Valve()
        valve.subscribe(event)
        valve.open(30)
        valve.close()
        assert len(signals) == 1


class TestConditionsAndActions:
    def make_ctx(self, source=None, params=None):
        from repro.core import EventModifier, EventOccurrence, Rule, RuleContext

        occurrence = EventOccurrence(
            class_name="Valve",
            method="open",
            modifier=EventModifier.END,
            source=source,
            params=params or {},
        )
        rule = Rule("ctx-rule", "end Valve::open(int psi)")
        return RuleContext(rule=rule, occurrence=occurrence,
                           params=occurrence.parameters())

    def test_condition_sees_params(self):
        condition = compile_condition("psi > 50")
        assert condition(self.make_ctx(params={"psi": 70}))
        assert not condition(self.make_ctx(params={"psi": 10}))

    def test_condition_sees_self(self):
        valve = Valve()
        valve.pressure = 99
        condition = compile_condition("self.pressure > 50")
        assert condition(self.make_ctx(source=valve))

    def test_action_mutates_source(self):
        valve = Valve()
        action = compile_action("self.pressure = 7")
        action(self.make_ctx(source=valve))
        assert valve.pressure == 7

    def test_multiline_action(self):
        valve = Valve()
        action = compile_action("x = 3\nself.pressure = x * 2")
        action(self.make_ctx(source=valve))
        assert valve.pressure == 6

    def test_abort_shorthand(self):
        from repro.oodb import TransactionAborted

        action = compile_action("abort")
        with pytest.raises(TransactionAborted):
            action(self.make_ctx())

    def test_syntax_errors_rejected_eagerly(self):
        with pytest.raises(DslError):
            compile_condition("not ) valid (")
        with pytest.raises(DslError):
            compile_action("def :")

    def test_compiled_objects_report_source(self):
        assert compile_condition("psi > 1").source == "psi > 1"
        assert "pressure" in repr(compile_action("self.pressure = 1"))

    def test_compiled_condition_persists(self, mem_db):
        condition = CompiledCondition("psi > 5")
        mem_db.add(condition)
        mem_db.commit()
        mem_db.evict_cache()
        restored = mem_db.fetch(condition.oid)
        assert restored.source == "psi > 5"
        assert restored(self.make_ctx(params={"psi": 6}))

    def test_compiled_action_persists(self, mem_db):
        action = CompiledAction("self.pressure = 1")
        mem_db.add(action)
        mem_db.commit()
        mem_db.evict_cache()
        restored = mem_db.fetch(action.oid)
        valve = Valve()
        restored(self.make_ctx(source=valve))
        assert valve.pressure == 1


class TestRuleSpecs:
    def test_full_block(self, sentinel):
        rule = parse_rule(
            """
            RULE HighPressure
            ON   end Valve::open(int psi)
            IF   psi > 100
            DO   self.pressure = 100
            MODE immediate
            PRIORITY 3
            """
        )
        assert rule.name == "HighPressure"
        assert rule.priority == 3
        valve = Valve()
        valve.subscribe(rule)
        valve.open(250)
        assert valve.pressure == 100
        valve.open(50)
        assert valve.pressure == 50

    def test_paper_letter_prefixes(self, sentinel):
        rule = parse_rule(
            """
            R: Marriage
            E: begin marry(spouse)
            C: self.sex == spouse.sex
            A: abort
            M: Immediate
            """,
            default_class="Person",
        )
        assert rule.name == "Marriage"
        assert rule.coupling.value == "immediate"
        assert rule.condition.source == "self.sex == spouse.sex"

    def test_continuation_lines(self, sentinel):
        rule = parse_rule(
            """
            RULE Multi
            ON end Valve::open(int psi)
            DO x = 1
               self.pressure = x + 1
            """
        )
        valve = Valve()
        valve.subscribe(rule)
        valve.open(9)
        assert valve.pressure == 2

    def test_missing_event_rejected(self):
        with pytest.raises(DslError):
            parse_rule("RULE NoEvent\nDO x = 1")

    def test_unknown_prefix_rejected(self):
        with pytest.raises(DslError):
            parse_rule("WHENEVER something happens")

    def test_defaults(self, sentinel):
        rule = parse_rule("ON end Valve::open(int psi)")
        assert rule.coupling.value == "immediate"
        assert rule.priority == 0
        assert rule.condition is None
