"""Tests for the extended operators: Any, Not, Aperiodic, A*, Periodic, Plus."""

import pytest

from repro.core import (
    Aperiodic,
    AperiodicStar,
    Not,
    Periodic,
    Plus,
    Primitive,
    Reactive,
    event_method,
)
from repro.core.events import Any as AnyEvent
from repro.core.events.base import EventError


class Machine(Reactive):
    @event_method
    def start(self, tag=""):
        pass

    @event_method
    def work(self, tag=""):
        pass

    @event_method
    def stop(self, tag=""):
        pass


class Signals:
    def __init__(self):
        self.occurrences = []

    def on_event(self, event, occurrence):
        self.occurrences.append(occurrence)


def primitives():
    return (
        Primitive("end Machine::start(str tag)"),
        Primitive("end Machine::work(str tag)"),
        Primitive("end Machine::stop(str tag)"),
    )


def wire(event):
    machine = Machine()
    machine.subscribe(event)
    signals = Signals()
    event.add_listener(signals)
    return machine, signals


class TestAny:
    def test_two_of_three(self):
        start, work, stop = primitives()
        machine, signals = wire(AnyEvent(2, start, work, stop))
        machine.start()
        assert signals.occurrences == []
        machine.stop()
        assert len(signals.occurrences) == 1
        methods = {c.method for c in signals.occurrences[0].constituents}
        assert methods == {"start", "stop"}

    def test_same_event_twice_does_not_count_as_two(self):
        start, work, stop = primitives()
        machine, signals = wire(AnyEvent(2, start, work, stop))
        machine.start()
        machine.start()
        assert signals.occurrences == []

    def test_chronicle_consumes(self):
        start, work, stop = primitives()
        machine, signals = wire(AnyEvent(2, start, work, stop))
        machine.start()
        machine.work()
        assert len(signals.occurrences) == 1
        machine.stop()  # only one distinct pending now
        assert len(signals.occurrences) == 1

    def test_m_equals_one_behaves_like_disjunction(self):
        start, work, stop = primitives()
        machine, signals = wire(AnyEvent(1, start, work, stop))
        machine.work()
        machine.stop()
        assert len(signals.occurrences) == 2

    def test_invalid_m(self):
        start, work, stop = primitives()
        with pytest.raises(EventError):
            AnyEvent(4, start, work, stop)
        with pytest.raises(EventError):
            AnyEvent(0, start, work)


class TestNot:
    def test_signals_when_middle_absent(self):
        start, work, stop = primitives()
        machine, signals = wire(Not(work, start, stop))
        machine.start()
        machine.stop()
        assert len(signals.occurrences) == 1

    def test_silent_when_middle_occurs(self):
        start, work, stop = primitives()
        machine, signals = wire(Not(work, start, stop))
        machine.start()
        machine.work()
        machine.stop()
        assert signals.occurrences == []

    def test_windows_reset_after_terminator(self):
        start, work, stop = primitives()
        machine, signals = wire(Not(work, start, stop))
        machine.start()
        machine.work()
        machine.stop()     # spoiled window closed
        machine.stop()     # no open window: nothing
        assert signals.occurrences == []
        machine.start()
        machine.stop()     # clean window
        assert len(signals.occurrences) == 1

    def test_middle_before_window_is_harmless(self):
        start, work, stop = primitives()
        machine, signals = wire(Not(work, start, stop))
        machine.work()     # before any window opens
        machine.start()
        machine.stop()
        assert len(signals.occurrences) == 1


class TestAperiodic:
    def test_each_middle_in_window(self):
        start, work, stop = primitives()
        machine, signals = wire(Aperiodic(work, start, stop))
        machine.work("outside")       # no window yet
        machine.start()
        machine.work("in-1")
        machine.work("in-2")
        machine.stop()
        machine.work("after")
        assert len(signals.occurrences) == 2
        inner_tags = [
            o.constituents[-1].params["tag"] for o in signals.occurrences
        ]
        assert inner_tags == ["in-1", "in-2"]


class TestAperiodicStar:
    def test_accumulates_until_close(self):
        start, work, stop = primitives()
        machine, signals = wire(AperiodicStar(work, start, stop))
        machine.start()
        machine.work("a")
        machine.work("b")
        assert signals.occurrences == []
        machine.stop()
        assert len(signals.occurrences) == 1
        methods = [c.method for c in signals.occurrences[0].constituents]
        assert methods == ["start", "work", "work", "stop"]

    def test_empty_window_still_signals_boundaries(self):
        start, work, stop = primitives()
        machine, signals = wire(AperiodicStar(work, start, stop))
        machine.start()
        machine.stop()
        assert len(signals.occurrences) == 1
        assert len(signals.occurrences[0].constituents) == 2


class TestPeriodic:
    def test_ticks_inside_window(self, manual_clock):
        start, _work, stop = primitives()
        periodic = Periodic(start, 10.0, stop)
        machine, signals = wire(periodic)
        machine.start()
        assert periodic.poll() == 0       # no time has passed
        manual_clock.advance(25.0)
        assert periodic.poll() == 2       # ticks at +10 and +20
        ticks = [o.constituents[-1].params["tick"] for o in signals.occurrences]
        assert ticks == [1, 2]

    def test_terminator_closes_window(self, manual_clock):
        start, _work, stop = primitives()
        periodic = Periodic(start, 10.0, stop)
        machine, signals = wire(periodic)
        machine.start()
        manual_clock.advance(15.0)
        periodic.poll()
        machine.stop()
        manual_clock.advance(100.0)
        assert periodic.poll() == 0
        assert len(signals.occurrences) == 1

    def test_no_window_no_ticks(self, manual_clock):
        start, _work, stop = primitives()
        periodic = Periodic(start, 5.0, stop)
        wire(periodic)
        manual_clock.advance(100.0)
        assert periodic.poll() == 0

    def test_bad_period(self):
        start, _work, stop = primitives()
        with pytest.raises(EventError):
            Periodic(start, 0.0, stop)

    def test_disabled_pollable(self, manual_clock):
        start, _work, stop = primitives()
        periodic = Periodic(start, 5.0, stop)
        machine, _ = wire(periodic)
        machine.start()
        periodic.disable()
        manual_clock.advance(50.0)
        assert periodic.poll() == 0


class TestPlus:
    def test_fires_delta_after_base(self, manual_clock):
        start, _work, _stop = primitives()
        plus = Plus(start, 30.0)
        machine, signals = wire(plus)
        machine.start()
        manual_clock.advance(29.0)
        assert plus.poll() == 0
        manual_clock.advance(2.0)
        assert plus.poll() == 1
        assert len(signals.occurrences) == 1

    def test_each_base_occurrence_schedules_one(self, manual_clock):
        start, _work, _stop = primitives()
        plus = Plus(start, 10.0)
        machine, signals = wire(plus)
        machine.start()
        manual_clock.advance(1.0)
        machine.start()
        manual_clock.advance(100.0)
        assert plus.poll() == 2

    def test_negative_delta_rejected(self):
        start, _work, _stop = primitives()
        with pytest.raises(EventError):
            Plus(start, -1.0)
