"""Conformance tests: every figure of the paper, reproduced (E1/E2).

Each test class corresponds to one figure (or section) and checks that
our API provides the structure and behaviour the figure shows.
"""

import pytest

from repro.core import (
    Conjunction,
    Disjunction,
    Event,
    EventDetector,
    Notifiable,
    Primitive,
    Reactive,
    Rule,
    Sequence,
    event_generators,
)
from repro.oodb import Persistent
from repro.workloads import Employee, FinancialInfo, Portfolio, Stock


class TestFigure1And2ProducerConsumer:
    """Reactive objects produce events; rules/detectors consume them."""

    def test_ibm_dowjones_rule_r1(self, sentinel):
        """Fig 2: object1/object2 -> e1, e2 -> And(e1,e2) -> rule R1."""
        ibm = Stock("IBM", 100.0)            # object1 (reactive)
        dow = FinancialInfo("DJ", 10_000.0)  # object2 (reactive)
        e1 = Primitive("end Stock::set_price(float price)")
        e2 = Primitive("end FinancialInfo::set_value(float value)")
        executed = []
        r1 = Rule(
            "R1", Conjunction(e1, e2),
            condition=lambda ctx: True,      # C { code }
            action=lambda ctx: executed.append(ctx),  # A { code }
        )
        ibm.subscribe(r1)
        dow.subscribe(r1)
        ibm.set_price(99.0)
        assert executed == []                # And needs both
        dow.set_value(10_100.0)
        assert len(executed) == 1

    def test_asynchronous_interface_does_not_change_return(self, sentinel):
        """Fig 1: the conventional (synchronous) interface is unchanged."""
        stock = Stock("IBM", 42.0)
        rule = Rule("watcher", "end Stock::get_price()")
        stock.subscribe(rule)
        assert stock.get_price() == 42.0     # same result, events on the side
        assert rule.times_triggered == 1


class TestFigure3ClassHierarchy:
    """zg-pos -> Notifiable -> {Event, Rule}; Reactive beside them."""

    def test_rule_and_event_are_notifiable(self):
        assert issubclass(Rule, Notifiable)
        assert issubclass(Event, Notifiable)

    def test_notifiable_and_reactive_are_persistent_capable(self):
        # zg-pos == Persistent: derivation grants persistence.
        assert issubclass(Notifiable, Persistent)
        assert issubclass(Reactive, Persistent)

    def test_operator_hierarchy(self):
        for operator in (Primitive, Conjunction, Disjunction, Sequence):
            assert issubclass(operator, Event)


class TestFigure4ReactiveClass:
    """consumers list + Subscribe/Unsubscribe/Notify."""

    def test_api_surface(self, sentinel):
        stock = Stock("S", 1.0)
        consumer = Notifiable()
        stock.subscribe(consumer)
        assert consumer in stock.subscribers()
        stock.unsubscribe(consumer)
        assert stock.subscribers() == []

    def test_notify_parameters(self, sentinel):
        """Notify carries oid, event name, timestamp, actual parameters."""
        consumer = Notifiable()
        stock = Stock("S", 1.0)
        stock.subscribe(consumer)
        stock.set_price(3.0)
        occurrence = consumer.last_occurrence()
        assert occurrence.method == "set_price"
        assert occurrence.params == {"price": 3.0}
        assert occurrence.timestamp > 0


class TestFigure5And6EventHierarchy:
    def test_conjunction_structure(self):
        """Fig 6: EventOne, EventTwo, Raised, constructor, Notify."""
        first = Primitive("end Stock::set_price(float price)")
        second = Primitive("end Stock::get_price()")
        conjunction = Conjunction(first, second)
        assert conjunction.children() == (first, second)
        assert conjunction.raised is False

    def test_raised_flag_set_on_detection(self, sentinel):
        first = Primitive("end Stock::set_price(float price)")
        second = Primitive("end Stock::get_price()")
        conjunction = Conjunction(first, second)
        stock = Stock("S", 1.0)
        stock.subscribe(conjunction)
        stock.set_price(2.0)
        stock.get_price()
        assert conjunction.raised is True


class TestFigure7RuleClass:
    def test_rule_attributes(self):
        event = Primitive("end Stock::set_price(float price)")
        rule = Rule(
            "named", event,
            condition=lambda ctx: True,
            action=lambda ctx: None,
            coupling="deferred",
            enabled=False,
        )
        assert rule.name == "named"
        assert rule.event is event
        assert rule.coupling.value == "deferred"
        assert rule.enabled is False

    def test_rule_operations(self):
        rule = Rule("ops", "end Stock::set_price(float price)")
        rule.disable()
        assert not rule.enabled
        rule.enable()
        assert rule.enabled
        rule.update(priority=9, coupling="decoupled")
        assert rule.priority == 9
        assert rule.coupling.value == "decoupled"


class TestSection46EventCreation:
    def test_primitive_from_signature(self):
        event = Primitive("end Employee::Set-Salary(float x)")
        assert event.signature.method == "Set_Salary"

    def test_deposit_withdraw_sequence(self, sentinel):
        from repro.workloads import Account

        deposit = Primitive("end Account::Deposit(float x)")
        withdraw = Primitive("before Account::Withdraw(float x)")
        dep_wit = Sequence(deposit, withdraw)
        account = Account("A1", 100.0)
        account.subscribe(dep_wit)
        account.deposit(10.0)
        account.withdraw(5.0)
        assert dep_wit.signal_count == 1


class TestSection2PurchaseRule:
    def test_full_scenario(self, sentinel):
        ibm = Stock("IBM", 100.0)
        dow = FinancialInfo("DowJones", 10_000.0)
        parker = Portfolio("Parker", cash=100_000.0)
        rule = Rule(
            "Purchase",
            Conjunction(
                Primitive("end Stock::set_price(float price)"),
                Primitive("end FinancialInfo::set_value(float value)"),
            ),
            condition=lambda ctx: ibm.price < 80 and dow.change < 3.4,
            action=lambda ctx: parker.purchase("IBM", 10, ibm.price),
        )
        ibm.subscribe(rule)
        dow.subscribe(rule)
        ibm.set_price(79.0)
        dow.set_value(10_050.0)
        assert parker.holdings.get("IBM") == 10


class TestEventInterfaceContract:
    def test_employee_interface_matches_fig8(self):
        generators = event_generators(Employee)
        assert generators["change_salary"].before is True
        assert generators["change_salary"].after is False
        assert generators["get_salary"].after is True
        assert generators["get_age"].before and generators["get_age"].after
        assert "get_name" not in generators
