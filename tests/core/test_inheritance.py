"""Inheritance of event interfaces and rules — single and multiple (§1).

The paper lists "the principle of inheritance (both single and multiple)
and its effect on rule incorporation" among the OO-model differences the
design must handle.  These tests pin the semantics down:

* event interfaces merge along the MRO; subclasses may extend or
  re-declare entries;
* signatures written against a base class match subclass occurrences;
* class-level rules apply to subclass instances, including through
  multiple inheritance;
* overriding a generator method in a subclass keeps it a generator.
"""

import pytest

from repro.core import (
    EventModifier,
    Notifiable,
    Primitive,
    Reactive,
    Rule,
    class_rule,
    event_generators,
    event_method,
)


class Recorder(Notifiable):
    def __init__(self):
        super().__init__()
        self.seen = []

    def notify(self, occurrence):
        self.seen.append(occurrence)


class Vehicle(Reactive):
    def __init__(self):
        super().__init__()
        self.km = 0

    @event_method
    def drive(self, km):
        self.km += km


class Radio(Reactive):
    @event_method
    def tune(self, freq):
        self.freq = freq


class Car(Vehicle):
    @event_method(before=True)
    def park(self):
        pass


class RadioCar(Car, Radio):
    """Multiple inheritance: generators from both branches."""


class TestSingleInheritance:
    def test_interface_merges_down(self):
        generators = event_generators(Car)
        assert set(generators) >= {"drive", "park"}

    def test_subclass_occurrence_carries_mro(self, sentinel):
        recorder = Recorder()
        car = Car()
        car.subscribe(recorder)
        car.drive(10)
        occurrence = recorder.seen[0]
        assert occurrence.class_name == "Car"
        assert "Vehicle" in occurrence.class_names

    def test_base_signature_matches_subclass(self, sentinel):
        event = Primitive("end Vehicle::drive(int km)")
        car = Car()
        car.subscribe(event)
        car.drive(5)
        assert event.raised

    def test_subclass_signature_does_not_match_base(self, sentinel):
        event = Primitive("begin Car::park()")
        vehicle = Vehicle()
        vehicle.subscribe(event)
        vehicle.drive(5)
        assert not event.raised

    def test_override_keeps_generator(self, sentinel):
        class SportsCar(Car):
            @event_method
            def drive(self, km):  # re-declared with a different body
                self.km += km * 2

        recorder = Recorder()
        sports = SportsCar()
        sports.subscribe(recorder)
        sports.drive(10)
        assert sports.km == 20
        assert [o.method for o in recorder.seen] == ["drive"]

    def test_override_can_change_modifiers(self, sentinel):
        class Audited(Vehicle):
            @event_method(before=True, after=True)
            def drive(self, km):
                self.km += km

        recorder = Recorder()
        audited = Audited()
        audited.subscribe(recorder)
        audited.drive(1)
        assert [o.modifier for o in recorder.seen] == [
            EventModifier.BEGIN,
            EventModifier.END,
        ]


class TestMultipleInheritance:
    def test_generators_from_both_branches(self, sentinel):
        generators = event_generators(RadioCar)
        assert set(generators) >= {"drive", "park", "tune"}

    def test_events_from_both_branches(self, sentinel):
        recorder = Recorder()
        hybrid = RadioCar()
        hybrid.subscribe(recorder)
        hybrid.drive(3)
        hybrid.tune(99.5)
        methods = [o.method for o in recorder.seen]
        assert methods == ["drive", "tune"]

    def test_signatures_of_either_base_match(self, sentinel):
        vehicle_event = Primitive("end Vehicle::drive(int km)")
        radio_event = Primitive("end Radio::tune(float freq)")
        hybrid = RadioCar()
        hybrid.subscribe(vehicle_event)
        hybrid.subscribe(radio_event)
        hybrid.drive(1)
        hybrid.tune(101.1)
        assert vehicle_event.raised and radio_event.raised


class TestRuleInheritance:
    def test_class_rule_covers_diamond(self, sentinel):
        log = []

        class Base(Reactive):
            @event_method
            def touch(self):
                pass

            __rules__ = [
                class_rule(
                    "TouchLog", on="end touch()",
                    action=lambda ctx: log.append(type(ctx.source).__name__),
                ),
            ]

        class Left(Base):
            pass

        class Right(Base):
            pass

        class Diamond(Left, Right):
            pass

        Diamond().touch()
        # One class-consumer on Base: fires once, not once per path.
        assert log == ["Diamond"]

    def test_subclass_adds_rules_without_losing_inherited(self, sentinel):
        log = []

        class BaseR(Reactive):
            @event_method
            def touch(self):
                pass

            __rules__ = [
                class_rule("BaseRule", on="end touch()",
                           action=lambda ctx: log.append("base")),
            ]

        class SubR(BaseR):
            __rules__ = [
                class_rule("SubRule", on="end touch()",
                           action=lambda ctx: log.append("sub")),
            ]

        SubR().touch()
        assert sorted(log) == ["base", "sub"]
        log.clear()
        BaseR().touch()
        assert log == ["base"]  # the subclass rule stays with the subclass

    def test_instance_rule_on_base_signature_spans_hierarchy(self, sentinel):
        hits = []
        rule = Rule(
            "fleet", "end Vehicle::drive(int km)",
            action=lambda ctx: hits.append(type(ctx.source).__name__),
        )
        vehicle, car, hybrid = Vehicle(), Car(), RadioCar()
        for obj in (vehicle, car, hybrid):
            obj.subscribe(rule)
        vehicle.drive(1)
        car.drive(1)
        hybrid.drive(1)
        assert hits == ["Vehicle", "Car", "RadioCar"]
