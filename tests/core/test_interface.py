"""Tests for the event interface: declarations, stubs, and Figure 8."""

import pytest

from repro.core import (
    EventModifier,
    EventSpec,
    Notifiable,
    Reactive,
    event_generators,
    event_method,
)
from repro.oodb.errors import SchemaError


class Recorder(Notifiable):
    """A consumer that keeps every occurrence for assertions."""

    def __init__(self):
        super().__init__()
        self.seen = []

    def notify(self, occurrence):
        self.seen.append(occurrence)
        self.record(occurrence)


class TestEventSpec:
    def test_parse_forms(self):
        assert EventSpec.parse("begin") == EventSpec(before=True, after=False)
        assert EventSpec.parse("end") == EventSpec(before=False, after=True)
        assert EventSpec.parse("begin|end") == EventSpec(before=True, after=True)
        assert EventSpec.parse("begin && end") == EventSpec(before=True, after=True)
        assert EventSpec.parse("both") == EventSpec(before=True, after=True)
        assert EventSpec.parse("before") == EventSpec(before=True, after=False)
        assert EventSpec.parse("after") == EventSpec(before=False, after=True)

    def test_bad_spec(self):
        with pytest.raises(SchemaError):
            EventSpec.parse("sometimes")

    def test_must_raise_something(self):
        with pytest.raises(SchemaError):
            EventSpec(before=False, after=False)


class TestDecoratorForm:
    def test_bare_decorator_is_end_of_method(self):
        class Obj(Reactive):
            @event_method
            def act(self):
                return "done"

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        assert obj.act() == "done"
        assert len(recorder.seen) == 1
        assert recorder.seen[0].modifier is EventModifier.END
        assert recorder.seen[0].method == "act"
        assert recorder.seen[0].result == "done"

    def test_before_flag(self):
        class Obj(Reactive):
            @event_method(before=True)
            def act(self):
                pass

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        obj.act()
        assert [o.modifier for o in recorder.seen] == [EventModifier.BEGIN]

    def test_both_flags(self):
        class Obj(Reactive):
            @event_method(before=True, after=True)
            def act(self):
                pass

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        obj.act()
        assert [o.modifier for o in recorder.seen] == [
            EventModifier.BEGIN,
            EventModifier.END,
        ]

    def test_begin_precedes_method_body(self):
        order = []

        class Obj(Reactive):
            @event_method(before=True)
            def act(self):
                order.append("body")

        class Watcher(Notifiable):
            def notify(self, occurrence):
                order.append("event")

        obj = Obj()
        obj.subscribe(Watcher())
        obj.act()
        assert order == ["event", "body"]

    def test_end_follows_method_body(self):
        order = []

        class Obj(Reactive):
            @event_method
            def act(self):
                order.append("body")

        class Watcher(Notifiable):
            def notify(self, occurrence):
                order.append("event")

        obj = Obj()
        obj.subscribe(Watcher())
        obj.act()
        assert order == ["body", "event"]

    def test_params_bound_by_name(self):
        class Obj(Reactive):
            @event_method
            def pay(self, amount, bonus=0):
                return amount + bonus

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        obj.pay(100, bonus=5)
        assert recorder.seen[0].params == {"amount": 100, "bonus": 5}

    def test_undeclared_method_generates_nothing(self):
        class Obj(Reactive):
            @event_method
            def tracked(self):
                pass

            def untracked(self):
                pass

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        obj.untracked()
        assert recorder.seen == []


class TestMappingForm:
    def test_event_interface_mapping(self):
        class Obj(Reactive):
            __event_interface__ = {"go": "begin|end"}

            def go(self):
                return 1

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        obj.go()
        assert len(recorder.seen) == 2

    def test_mapping_can_name_inherited_method(self):
        class Base(Reactive):
            def shared(self):
                return "base"

        class Derived(Base):
            __event_interface__ = {"shared": "end"}

        recorder = Recorder()
        derived = Derived()
        derived.subscribe(recorder)
        derived.shared()
        assert len(recorder.seen) == 1
        # The base class itself is untouched.
        base_recorder = Recorder()
        base = Base()
        base.subscribe(base_recorder)
        base.shared()
        assert base_recorder.seen == []

    def test_mapping_unknown_method_rejected(self):
        with pytest.raises(SchemaError):
            class Bad(Reactive):
                __event_interface__ = {"ghost": "end"}

    def test_interface_inherited_by_subclass(self):
        class Base(Reactive):
            @event_method
            def act(self):
                pass

        class Derived(Base):
            pass

        recorder = Recorder()
        derived = Derived()
        derived.subscribe(recorder)
        derived.act()
        assert len(recorder.seen) == 1
        assert recorder.seen[0].class_name == "Derived"
        assert "Base" in recorder.seen[0].class_names

    def test_event_generators_introspection(self):
        class Obj(Reactive):
            @event_method(before=True)
            def a(self):
                pass

            @event_method
            def b(self):
                pass

        generators = event_generators(Obj)
        assert generators["a"].before and not generators["a"].after
        assert generators["b"].after and not generators["b"].before


class TestFigure8:
    """The paper's employee class, declaration for declaration."""

    def build(self):
        class Employee(Reactive):
            def __init__(self, age, salary, name):
                super().__init__()
                self.age = age
                self.salary = salary
                self.name = name

            @event_method(before=True)            # event begin Change-Salary
            def change_salary(self, x):
                self.salary += x

            @event_method(after=True)             # event end Get-Salary
            def get_salary(self):
                return self.salary

            @event_method(before=True, after=True)  # event begin && end Get-Age
            def get_age(self):
                return self.age

            def get_name(self):                   # no events
                return self.name

        return Employee

    def test_event_profile(self):
        Employee = self.build()
        recorder = Recorder()
        employee = Employee(30, 1000.0, "Ann")
        employee.subscribe(recorder)

        employee.change_salary(10.0)
        employee.get_salary()
        employee.get_age()
        employee.get_name()

        profile = [(o.method, o.modifier) for o in recorder.seen]
        assert profile == [
            ("change_salary", EventModifier.BEGIN),
            ("get_salary", EventModifier.END),
            ("get_age", EventModifier.BEGIN),
            ("get_age", EventModifier.END),
        ]


class TestOccurrenceContents:
    def test_message_fields_match_paper(self):
        """Generated event = Oid + Class + Method + parameters + timestamp."""

        class Obj(Reactive):
            @event_method
            def act(self, value):
                pass

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        obj.act(7)
        occurrence = recorder.seen[0]
        assert occurrence.source is obj
        assert occurrence.source_oid is None  # transient object
        assert occurrence.class_name == "Obj"
        assert occurrence.method == "act"
        assert occurrence.params == {"value": 7}
        assert occurrence.timestamp > 0
        assert occurrence.seq > 0

    def test_oid_present_for_persistent_source(self, mem_db):
        class Obj(Reactive):
            @event_method
            def act(self):
                pass

        recorder = Recorder()
        obj = Obj()
        mem_db.add(obj)
        obj.subscribe(recorder)
        obj.act()
        assert recorder.seen[0].source_oid == obj.oid

    def test_explicit_raise_event(self):
        class Obj(Reactive):
            def act(self):
                self.raise_event("milestone", progress=0.5)

        recorder = Recorder()
        obj = Obj()
        obj.subscribe(recorder)
        obj.act()
        assert recorder.seen[0].method == "milestone"
        assert recorder.seen[0].modifier is EventModifier.EXPLICIT
        assert recorder.seen[0].params == {"progress": 0.5}
