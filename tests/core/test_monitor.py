"""Tests for the external monitoring viewpoint helper and registries."""

import pytest

from repro.core import Notifiable, Reactive, Rule, event_method, monitor, unmonitor
from repro.core.registry import EventRegistry, RuleRegistry
from repro.workloads import FinancialInfo, Portfolio, Stock


class TestMonitor:
    def test_single_object(self, sentinel):
        stock = Stock("IBM", 100.0)
        hits = []
        monitor(
            stock,
            on="end Stock::set_price(float price)",
            action=lambda ctx: hits.append(ctx.param("price")),
            register=False,
        )
        stock.set_price(50.0)
        assert hits == [50.0]

    def test_cross_class_conjunction(self, sentinel):
        """The paper's §2 Purchase rule shape."""
        ibm = Stock("IBM", 95.0)
        dow = FinancialInfo("DowJones", 10_000.0)
        parker = Portfolio("Parker", cash=100_000.0)
        monitor(
            [ibm, dow],
            on=(
                "end Stock::set_price(float price) and "
                "end FinancialInfo::set_value(float value)"
            ),
            condition=lambda ctx: ibm.price < 80 and dow.change < 3.4,
            action=lambda ctx: parker.purchase("IBM", 100, ibm.price),
            name="Purchase",
            register=False,
        )
        ibm.set_price(78.0)
        dow.set_value(10_100.0)
        assert parker.holdings == {"IBM": 100}

    def test_no_class_definition_changes_needed(self, sentinel):
        """Monitoring attaches at runtime; the class has no rule hooks."""
        stock = Stock("X", 1.0)
        assert not stock.has_consumers()
        rule = monitor(
            stock, on="end Stock::set_price(float price)", register=False
        )
        assert stock.has_consumers()
        unmonitor(rule, stock)
        assert not stock.has_consumers()

    def test_string_condition_action(self, sentinel):
        stock = Stock("Y", 10.0)
        rule = monitor(
            stock,
            on="end Stock::set_price(float price)",
            condition="price < 5",
            action="rule.cheap = True",
            register=False,
        )
        stock.set_price(9.0)
        assert not hasattr(rule, "cheap")
        stock.set_price(2.0)
        assert rule.cheap is True

    def test_passive_object_rejected(self, sentinel):
        with pytest.raises(TypeError):
            monitor(  # type: ignore[arg-type]
                object(), on="end Stock::set_price(float price)"
            )

    def test_bad_on_type_rejected(self, sentinel):
        with pytest.raises(TypeError):
            monitor([], on=42)  # type: ignore[arg-type]

    def test_registered_by_default(self, sentinel):
        from repro.core.registry import default_registry

        stock = Stock("Z", 1.0)
        rule = monitor(stock, on="end Stock::set_price(float price)")
        assert rule.name in default_registry()._rules
        default_registry().remove(rule.name)


class TestRuleRegistry:
    def test_add_get(self):
        registry = RuleRegistry()
        rule = Rule("r1", "end Stock::set_price(float price)")
        registry.add(rule)
        assert registry.get("r1") is rule
        assert "r1" in registry
        assert len(registry) == 1

    def test_duplicate_names_suffixed(self):
        registry = RuleRegistry()
        first = Rule("dup", "end Stock::set_price(float price)")
        second = Rule("dup", "end Stock::set_price(float price)")
        registry.add(first)
        registry.add(second)
        assert second.name == "dup#2"
        assert registry.get("dup") is first
        assert registry.get("dup#2") is second

    def test_re_add_same_rule_is_stable(self):
        registry = RuleRegistry()
        rule = Rule("same", "end Stock::set_price(float price)")
        registry.add(rule)
        registry.add(rule)
        assert rule.name == "same"

    def test_remove(self):
        registry = RuleRegistry()
        rule = Rule("gone", "end Stock::set_price(float price)")
        registry.add(rule)
        assert registry.remove("gone") is rule
        assert "gone" not in registry
        assert registry.remove("gone") is None

    def test_unknown_get(self):
        with pytest.raises(KeyError):
            RuleRegistry().get("missing")

    def test_scopes_and_bulk_toggle(self):
        registry = RuleRegistry()
        a = Rule("a", "end Stock::set_price(float price)")
        b = Rule("b", "end Stock::set_price(float price)")
        registry.add(a, scope="ClassX")
        registry.add(b, scope="instance")
        assert registry.in_scope("ClassX") == [a]
        registry.disable_all("ClassX")
        assert not a.enabled and b.enabled
        registry.enable_all()
        assert a.enabled and b.enabled

    def test_iteration_and_names(self):
        registry = RuleRegistry()
        registry.add(Rule("z", "end Stock::set_price(float price)"))
        registry.add(Rule("a", "end Stock::set_price(float price)"))
        assert registry.names() == ["a", "z"]
        assert len(list(registry)) == 2


class TestEventRegistry:
    def test_add_get_remove(self):
        from repro.core import Primitive

        registry = EventRegistry()
        event = Primitive("end Stock::set_price(float price)")
        event.name = "price-change"
        registry.add(event)
        assert registry.get("price-change") is event
        assert "price-change" in registry
        assert registry.names() == ["price-change"]
        registry.remove("price-change")
        assert len(registry) == 0

    def test_unknown_get(self):
        with pytest.raises(KeyError):
            EventRegistry().get("ghost")
