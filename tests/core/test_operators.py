"""Tests for the paper's three operators: conjunction, disjunction, sequence."""

import pytest

from repro.core import (
    Conjunction,
    Disjunction,
    Notifiable,
    Primitive,
    Reactive,
    Sequence,
    event_method,
)
from repro.core.events.base import EventError


class Device(Reactive):
    @event_method
    def alpha(self, x=0):
        return x

    @event_method
    def beta(self, y=0):
        return y

    @event_method
    def gamma(self):
        pass


class Signals:
    """Listener collecting root-event signals."""

    def __init__(self):
        self.occurrences = []

    def on_event(self, event, occurrence):
        self.occurrences.append(occurrence)


def wire(event):
    """Attach a device and a signal collector to an event tree."""
    device = Device()
    device.subscribe(event)
    signals = Signals()
    event.add_listener(signals)
    return device, signals


def a_event():
    return Primitive("end Device::alpha(int x)")


def b_event():
    return Primitive("end Device::beta(int y)")


def c_event():
    return Primitive("end Device::gamma()")


class TestConjunction:
    def test_signals_when_both_occur_in_order(self):
        device, signals = wire(Conjunction(a_event(), b_event()))
        device.alpha()
        assert signals.occurrences == []
        device.beta()
        assert len(signals.occurrences) == 1

    def test_order_does_not_matter(self):
        device, signals = wire(Conjunction(a_event(), b_event()))
        device.beta()
        device.alpha()
        assert len(signals.occurrences) == 1

    def test_constituents_carried(self):
        device, signals = wire(Conjunction(a_event(), b_event()))
        device.alpha(1)
        device.beta(2)
        composite = signals.occurrences[0]
        methods = {c.method for c in composite.constituents}
        assert methods == {"alpha", "beta"}
        assert composite.parameters() == {"x": 1, "y": 2}

    def test_chronicle_consumes(self):
        device, signals = wire(Conjunction(a_event(), b_event()))
        device.alpha()
        device.beta()    # first pair
        device.beta()    # no fresh alpha -> nothing
        assert len(signals.occurrences) == 1
        device.alpha()   # pairs with... nothing (beta consumed? no: beta pending)
        assert len(signals.occurrences) == 2  # the extra beta was pending

    def test_nary_conjunction(self):
        device, signals = wire(Conjunction(a_event(), b_event(), c_event()))
        device.alpha()
        device.beta()
        assert signals.occurrences == []
        device.gamma()
        assert len(signals.occurrences) == 1
        assert len(signals.occurrences[0].constituents) == 3

    def test_operator_sugar(self):
        event = a_event() & b_event()
        assert isinstance(event, Conjunction)

    def test_composite_children(self):
        inner = Conjunction(a_event(), b_event())
        device, signals = wire(Conjunction(inner, c_event()))
        device.alpha()
        device.beta()
        device.gamma()
        assert len(signals.occurrences) == 1
        assert len(signals.occurrences[0].constituents) == 3


class TestDisjunction:
    def test_either_side_signals(self):
        device, signals = wire(Disjunction(a_event(), b_event()))
        device.alpha()
        device.beta()
        assert len(signals.occurrences) == 2

    def test_nary(self):
        device, signals = wire(Disjunction(a_event(), b_event(), c_event()))
        device.gamma()
        assert len(signals.occurrences) == 1

    def test_parameters_of_signalling_side(self):
        device, signals = wire(Disjunction(a_event(), b_event()))
        device.beta(42)
        assert signals.occurrences[0].parameters() == {"y": 42}

    def test_operator_sugar(self):
        assert isinstance(a_event() | b_event(), Disjunction)


class TestSequence:
    def test_in_order_signals(self):
        device, signals = wire(Sequence(a_event(), b_event()))
        device.alpha()
        device.beta()
        assert len(signals.occurrences) == 1

    def test_out_of_order_does_not(self):
        device, signals = wire(Sequence(a_event(), b_event()))
        device.beta()
        device.alpha()
        assert signals.occurrences == []

    def test_paper_deposit_withdraw(self):
        """§4.6: deposit then withdraw."""
        from repro.workloads import Account

        deposit = Primitive("end Account::Deposit(float x)")
        withdraw = Primitive("before Account::Withdraw(float x)")
        dep_wit = Sequence(deposit, withdraw)
        signals = Signals()
        dep_wit.add_listener(signals)
        account = Account("A", 100.0)
        account.subscribe(dep_wit)
        account.withdraw(10.0)   # withdraw before any deposit: nothing
        account.deposit(50.0)
        account.withdraw(20.0)   # deposit ; withdraw -> signal
        assert len(signals.occurrences) == 1

    def test_chronicle_pairs_fifo(self):
        device, signals = wire(Sequence(a_event(), b_event()))
        device.alpha(1)
        device.alpha(2)
        device.beta()
        device.beta()
        assert len(signals.occurrences) == 2
        first_initiator = signals.occurrences[0].constituents[0]
        assert first_initiator.params["x"] == 1

    def test_composite_left_child_uses_terminator_seq(self):
        """'All components of E1 occurred before the last component of E2'."""
        inner = Conjunction(a_event(), b_event())
        device, signals = wire(Sequence(inner, c_event()))
        device.alpha()
        device.gamma()   # gamma before the conjunction completes: no pair
        device.beta()    # conjunction completes now (after that gamma)
        assert signals.occurrences == []
        device.gamma()   # now gamma follows the completed conjunction
        assert len(signals.occurrences) == 1

    def test_operator_sugar(self):
        assert isinstance(a_event() >> b_event(), Sequence)

    def test_chain_folds_left(self):
        chained = a_event() >> b_event() >> c_event()
        assert isinstance(chained, Sequence)
        assert isinstance(chained.children()[0], Sequence)


class TestEventObjectBehaviour:
    def test_disabled_event_does_not_signal(self):
        device, signals = wire(Conjunction(a_event(), b_event()))
        event = device.subscribers()[0]
        event.disable()
        device.alpha()
        device.beta()
        assert signals.occurrences == []
        event.enable()
        device.alpha()
        device.beta()
        assert len(signals.occurrences) == 1

    def test_raised_flag_and_count(self):
        disjunction = Disjunction(a_event(), b_event())
        device, _ = wire(disjunction)
        assert not disjunction.raised
        device.alpha()
        assert disjunction.raised
        device.beta()
        assert disjunction.signal_count == 2

    def test_reset_clears_state(self):
        conjunction = Conjunction(a_event(), b_event())
        device, signals = wire(conjunction)
        device.alpha()
        conjunction.reset()
        device.beta()   # alpha buffer was cleared
        assert signals.occurrences == []

    def test_leaves(self):
        tree = (a_event() & b_event()) >> c_event()
        names = {leaf.signature.method for leaf in tree.leaves()}
        assert names == {"alpha", "beta", "gamma"}

    def test_contains(self):
        a = a_event()
        tree = a & b_event()
        assert tree.contains(a)
        assert not tree.contains(c_event())

    def test_children_validated(self):
        with pytest.raises(EventError):
            Conjunction(a_event(), "not-an-event")  # type: ignore[arg-type]

    def test_shared_subtree_dedupes_double_feed(self):
        """Two rules feeding one shared tree must not double-signal."""
        shared = a_event()
        disjunction = Disjunction(shared, b_event())
        signals = Signals()
        disjunction.add_listener(signals)
        device = Device()
        device.subscribe(disjunction)
        device.subscribe(disjunction)  # idempotent subscribe: 1 delivery
        # Feed the same occurrence twice by hand:
        device.alpha()
        occurrence = None
        device.unsubscribe(disjunction)
        from repro.core import EventModifier

        occurrence = device._make_occurrence(
            "alpha", EventModifier.END, (), {}, {}, None
        )
        disjunction.notify(occurrence)
        disjunction.notify(occurrence)  # duplicate path
        assert len(signals.occurrences) == 2  # one per *distinct* occurrence
