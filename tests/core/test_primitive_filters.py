"""Tests for primitive-event filters: source restriction and guards."""

from repro.core import Primitive, Rule
from repro.workloads import Stock


class Signals:
    def __init__(self):
        self.occurrences = []

    def on_event(self, event, occurrence):
        self.occurrences.append(occurrence)


class TestSourceRestriction:
    def test_restricted_event_ignores_other_instances(self, sentinel):
        a, b = Stock("A", 1.0), Stock("B", 1.0)
        event = Primitive("end Stock::set_price(float price)", sources=[a])
        signals = Signals()
        event.add_listener(signals)
        a.subscribe(event)
        b.subscribe(event)
        a.set_price(2.0)
        b.set_price(3.0)
        assert len(signals.occurrences) == 1
        assert signals.occurrences[0].source is a

    def test_restrict_to_after_construction(self, sentinel):
        a, b = Stock("A", 1.0), Stock("B", 1.0)
        event = Primitive("end Stock::set_price(float price)")
        event.restrict_to(b)
        signals = Signals()
        event.add_listener(signals)
        a.subscribe(event)
        b.subscribe(event)
        a.set_price(2.0)
        b.set_price(3.0)
        assert [o.source for o in signals.occurrences] == [b]


class TestGuards:
    def test_guard_filters_at_detection(self, sentinel):
        stock = Stock("A", 1.0)
        event = Primitive("end Stock::set_price(float price)").where(
            lambda occ: occ.params["price"] > 100
        )
        signals = Signals()
        event.add_listener(signals)
        stock.subscribe(event)
        stock.set_price(50.0)
        stock.set_price(150.0)
        assert len(signals.occurrences) == 1
        assert signals.occurrences[0].params["price"] == 150.0

    def test_guarded_event_inside_composite(self, sentinel):
        """A masked primitive feeds a composite with only matching occs."""
        stock = Stock("A", 1.0)
        spike = Primitive("end Stock::set_price(float price)").where(
            lambda occ: occ.params["price"] > 100
        )
        read = Primitive("end Stock::get_price()")
        spike_then_read = spike >> read
        signals = Signals()
        spike_then_read.add_listener(signals)
        stock.subscribe(spike_then_read)
        stock.set_price(10.0)    # not a spike
        stock.get_price()
        assert signals.occurrences == []
        stock.set_price(500.0)   # spike
        stock.get_price()
        assert len(signals.occurrences) == 1

    def test_guard_keeps_rule_condition_simple(self, sentinel):
        stock = Stock("A", 1.0)
        fired = []
        rule = Rule(
            "spike",
            Primitive("end Stock::set_price(float price)").where(
                lambda occ: occ.params["price"] > 100
            ),
            action=lambda ctx: fired.append(ctx.param("price")),
        )
        stock.subscribe(rule)
        stock.set_price(99.0)
        stock.set_price(101.0)
        assert fired == [101.0]
        assert rule.times_triggered == 1  # filtered before triggering

    def test_guard_exception_propagates(self, sentinel):
        import pytest

        stock = Stock("A", 1.0)
        event = Primitive("end Stock::set_price(float price)").where(
            lambda occ: 1 / 0
        )
        stock.subscribe(event)
        with pytest.raises(ZeroDivisionError):
            stock.set_price(1.0)

    def test_guarded_event_not_persisted_with_guard(self, sentinel_db):
        """Guards are transient: the reloaded event matches unguarded."""
        event = Primitive("end Stock::set_price(float price)").where(
            lambda occ: False
        )
        sentinel_db.persist(event)
        sentinel_db.db.commit()
        oid = event.oid
        sentinel_db.db.evict_cache()
        reloaded = sentinel_db.db.fetch(oid)
        assert reloaded._guard is None
