"""Tests for subscription: Reactive producers and Notifiable consumers."""

from repro.core import Notifiable, Reactive, event_method, subscribe_all


class Producer(Reactive):
    @event_method
    def ping(self, n=0):
        return n


class Consumer(Notifiable):
    def __init__(self):
        super().__init__()
        self.count = 0

    def notify(self, occurrence):
        self.count += 1
        self.record(occurrence)


class TestSubscription:
    def test_subscribe_delivers(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        producer.ping()
        assert consumer.count == 1

    def test_unsubscribed_by_default(self):
        producer = Producer()
        producer.ping()  # no consumers: nothing happens, no error
        assert not producer.has_consumers()

    def test_unsubscribe_stops_delivery(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        producer.ping()
        producer.unsubscribe(consumer)
        producer.ping()
        assert consumer.count == 1

    def test_subscribe_idempotent(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        producer.subscribe(consumer)
        producer.ping()
        assert consumer.count == 1

    def test_unsubscribe_unknown_is_noop(self):
        Producer().unsubscribe(Consumer())

    def test_m_to_n_relationship(self):
        """A reactive object can feed several notifiables and vice versa."""
        producers = [Producer() for _ in range(3)]
        consumers = [Consumer() for _ in range(2)]
        for producer in producers:
            for consumer in consumers:
                producer.subscribe(consumer)
        for producer in producers:
            producer.ping()
        assert all(c.count == 3 for c in consumers)

    def test_subscribe_all_helper(self):
        producers = [Producer() for _ in range(4)]
        consumer = Consumer()
        subscribe_all(producers, consumer)
        for producer in producers:
            producer.ping()
        assert consumer.count == 4

    def test_subscribers_listing(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        assert producer.subscribers() == [consumer]

    def test_delivery_count_returned(self):
        producer = Producer()
        a, b = Consumer(), Consumer()
        producer.subscribe(a)
        producer.subscribe(b)
        explicit = __import__(
            "repro.core", fromlist=["EventModifier"]
        ).EventModifier.EXPLICIT
        occurrence = producer._make_occurrence(
            "manual", explicit, (), {}, {}, None,
        )
        assert producer.notify_consumers(occurrence) == 2


class TestNotifiableRecording:
    def test_record_keeps_history(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        for i in range(5):
            producer.ping(i)
        history = consumer.history()
        assert len(history) == 5
        assert [h.params["n"] for h in history] == [0, 1, 2, 3, 4]

    def test_last_occurrence(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        assert consumer.last_occurrence() is None
        producer.ping(9)
        assert consumer.last_occurrence().params["n"] == 9

    def test_history_bounded(self):
        consumer = Consumer()
        producer = Producer()
        producer.subscribe(consumer)
        limit = consumer._recorded().maxlen
        for i in range(limit + 10):
            producer.ping(i)
        assert len(consumer.history()) == limit

    def test_clear_history(self):
        producer, consumer = Producer(), Consumer()
        producer.subscribe(consumer)
        producer.ping()
        consumer.clear_history()
        assert consumer.history() == []

    def test_base_notifiable_notify_records(self):
        plain = Notifiable()
        producer = Producer()
        producer.subscribe(plain)
        producer.ping()
        assert len(plain.history()) == 1


class TestConsumerListLaziness:
    def test_consumers_lazy_after_new(self):
        """Objects materialized without __init__ still work."""
        producer = Producer.__new__(Producer)
        assert producer.subscribers() == []
        consumer = Consumer()
        producer.subscribe(consumer)
        assert producer.subscribers() == [consumer]
