"""Tests for ECA rules: triggering, conditions, actions, first-class-ness."""

import pytest

from repro.core import (
    Disjunction,
    Primitive,
    Reactive,
    Rule,
    RuleError,
    Sentinel,
    event_method,
)
from repro.workloads import Employee, Manager


class Button(Reactive):
    @event_method
    def press(self, force=1):
        return force


class TestRuleBasics:
    def test_event_from_signature_string(self, sentinel):
        fired = []
        rule = Rule(
            "r", "end Button::press(int force)",
            action=lambda ctx: fired.append(ctx.param("force")),
        )
        button = Button()
        button.subscribe(rule)
        button.press(5)
        assert fired == [5]

    def test_condition_gates_action(self, sentinel):
        fired = []
        rule = Rule(
            "r", "end Button::press(int force)",
            condition=lambda ctx: ctx.param("force") > 3,
            action=lambda ctx: fired.append(ctx.param("force")),
        )
        button = Button()
        button.subscribe(rule)
        button.press(1)
        button.press(9)
        assert fired == [9]

    def test_counters(self, sentinel):
        rule = Rule(
            "r", "end Button::press(int force)",
            condition=lambda ctx: ctx.param("force") > 3,
            action=lambda ctx: None,
        )
        button = Button()
        button.subscribe(rule)
        button.press(1)
        button.press(9)
        assert rule.times_triggered == 2
        assert rule.times_fired == 1

    def test_rule_without_event_rejected(self):
        with pytest.raises(RuleError):
            Rule("nameless")

    def test_bad_event_type_rejected(self):
        with pytest.raises(RuleError):
            Rule("r", event=42)  # type: ignore[arg-type]

    def test_anonymous_rule_gets_name(self, sentinel):
        rule = Rule(event="end Button::press(int force)")
        assert rule.name.startswith("rule_")

    def test_no_condition_means_always(self, sentinel):
        fired = []
        rule = Rule("r", "end Button::press(int force)",
                    action=lambda ctx: fired.append(1))
        button = Button()
        button.subscribe(rule)
        button.press()
        assert fired == [1]


class TestEnableDisable:
    def test_disable_stops_everything(self, sentinel):
        fired = []
        rule = Rule("r", "end Button::press(int force)",
                    action=lambda ctx: fired.append(1))
        button = Button()
        button.subscribe(rule)
        rule.disable()
        button.press()
        assert fired == []
        rule.enable()
        button.press()
        assert fired == [1]

    def test_update_in_place(self, sentinel):
        fired = []
        rule = Rule("r", "end Button::press(int force)",
                    action=lambda ctx: fired.append("old"))
        button = Button()
        button.subscribe(rule)
        rule.update(action=lambda ctx: fired.append("new"), priority=5)
        button.press()
        assert fired == ["new"]
        assert rule.priority == 5

    def test_update_event_rewires_listener(self, sentinel):
        fired = []
        rule = Rule("r", "end Button::press(int force)",
                    action=lambda ctx: fired.append(1))
        button = Button()
        button.subscribe(rule)
        rule.update(event=Primitive("begin Button::press(int force)"))
        button.press()
        assert fired == []  # only begin events trigger now; press is end-only


class TestContext:
    def test_source_and_params(self, sentinel):
        captured = {}

        def action(ctx):
            captured["source"] = ctx.source
            captured["params"] = dict(ctx.params)
            captured["result"] = ctx.result

        rule = Rule("r", "end Button::press(int force)", action=action)
        button = Button()
        button.subscribe(rule)
        button.press(7)
        assert captured["source"] is button
        assert captured["params"] == {"force": 7}
        assert captured["result"] == 7

    def test_sources_for_composite(self, sentinel):
        fred = Employee("fred", 1.0)
        mike = Manager("mike", 2.0)
        emp = Primitive("end Employee::change_income(float amount)")
        mang = Primitive("end Manager::change_income(float amount)")
        captured = []
        rule = Rule(
            "r",
            emp & mang,
            action=lambda ctx: captured.extend(ctx.sources),
        )
        fred.subscribe(rule)
        mike.subscribe(rule)
        fred.change_income(10.0)
        mike.change_income(20.0)
        assert fred in captured and mike in captured


class TestInstanceLevelMonitoring:
    def test_only_subscribed_instances_trigger(self, sentinel):
        fired = []
        rule = Rule("r", "end Button::press(int force)",
                    action=lambda ctx: fired.append(ctx.source))
        watched, unwatched = Button(), Button()
        watched.subscribe(rule)
        watched.press()
        unwatched.press()
        assert fired == [watched]

    def test_subscribe_to_sugar(self, sentinel):
        fired = []
        rule = Rule("r", "end Button::press(int force)",
                    action=lambda ctx: fired.append(1))
        buttons = [Button() for _ in range(3)]
        rule.subscribe_to(*buttons)
        for button in buttons:
            button.press()
        assert len(fired) == 3
        rule.unsubscribe_from(buttons[0])
        buttons[0].press()
        assert len(fired) == 3

    def test_cross_class_rule_fig10(self, sentinel):
        """Figure 10: one rule monitoring instances of two classes."""
        fred = Employee("Fred", 50_000.0)
        mike = Manager("Mike", 60_000.0)
        emp = Primitive("end Employee::Change-Income(float amount)")
        mang = Primitive("end Manager::Change-Income(float amount)")
        equal = Disjunction(emp, mang)

        def make_equal(ctx):
            amount = ctx.param("amount")
            fred.salary = amount
            mike.salary = amount

        income_level = Rule(
            "IncomeLevel", equal,
            condition=lambda ctx: fred.salary != mike.salary,
            action=make_equal,
        )
        fred.subscribe(income_level)
        mike.subscribe(income_level)
        fred.change_income(70_000.0)
        assert fred.salary == mike.salary == 70_000.0
        mike.change_income(80_000.0)
        assert fred.salary == mike.salary == 80_000.0


class TestRulesOnRules:
    def test_meta_rule_observes_rule_firing(self, sentinel):
        """Rules are reactive: their fire/enable/disable raise events."""
        fired = []
        base_rule = Rule("base", "end Button::press(int force)",
                         action=lambda ctx: None)
        button = Button()
        button.subscribe(base_rule)

        meta_fired = []
        meta_rule = Rule(
            "meta", "end Rule::fire",
            action=lambda ctx: meta_fired.append(ctx.source.name),
        )
        base_rule.subscribe(meta_rule)  # the rule object is itself reactive

        button.press()
        assert meta_fired == ["base"]

    def test_meta_rule_on_disable(self, sentinel):
        events = []
        base_rule = Rule("base", "end Button::press(int force)")
        meta_rule = Rule(
            "meta", "end Rule::disable",
            action=lambda ctx: events.append("disabled"),
        )
        base_rule.subscribe(meta_rule)
        base_rule.disable()
        assert events == ["disabled"]


class TestMonitoredLeaves:
    def test_leaves_introspection(self, sentinel):
        emp = Primitive("end Employee::set_salary(float s)")
        mang = Primitive("end Manager::set_salary(float s)")
        rule = Rule("r", emp | mang)
        leaves = list(rule.monitored_leaves())
        assert emp in leaves and mang in leaves
