"""Tests for coupling modes, conflict resolution, and cascade control."""

import pytest

from repro.core import (
    CascadeError,
    Coupling,
    Reactive,
    Rule,
    RuleScheduler,
    Sentinel,
    event_method,
)
from repro.oodb import Persistent, TransactionAborted


class Knob(Reactive):
    def __init__(self):
        super().__init__()
        self.value = 0

    @event_method
    def turn(self, amount=1):
        self.value += amount
        return self.value


class Ledger(Persistent):
    def __init__(self):
        super().__init__()
        self.entries = []


class TestCouplingParse:
    def test_parse(self):
        assert Coupling.parse("immediate") is Coupling.IMMEDIATE
        assert Coupling.parse("Deferred") is Coupling.DEFERRED
        assert Coupling.parse(Coupling.DECOUPLED) is Coupling.DECOUPLED

    def test_bad(self):
        with pytest.raises(ValueError):
            Coupling.parse("eventually")


class TestImmediate:
    def test_runs_inline(self, sentinel):
        order = []
        rule = Rule("r", "end Knob::turn(int amount)",
                    action=lambda ctx: order.append("rule"))
        knob = Knob()
        knob.subscribe(rule)
        order.append("before")
        knob.turn()
        order.append("after")
        assert order == ["before", "rule", "after"]

    def test_priority_order_within_round(self, sentinel):
        order = []
        knob = Knob()
        for name, priority in (("low", 1), ("high", 10), ("mid", 5)):
            rule = Rule(
                name, "end Knob::turn(int amount)",
                action=lambda ctx, n=name: order.append(n),
                priority=priority,
            )
            knob.subscribe(rule)
        knob.turn()
        assert order == ["high", "mid", "low"]

    def test_fifo_resolver(self):
        order = []
        scheduler = RuleScheduler(resolver="fifo")
        system = Sentinel(adopt_class_rules=False)
        system.scheduler = scheduler
        with system:
            knob = Knob()
            for name, priority in (("a", 1), ("b", 99)):
                rule = Rule(
                    name, "end Knob::turn(int amount)",
                    action=lambda ctx, n=name: order.append(n),
                    priority=priority,
                    scheduler=scheduler,
                )
                knob.subscribe(rule)
            knob.turn()
        assert order == ["a", "b"]  # subscription order, priority ignored

    def test_cascade_depth_limit(self):
        scheduler = RuleScheduler(max_depth=5)
        system = Sentinel(adopt_class_rules=False)
        system.scheduler = scheduler
        with system:
            knob = Knob()
            rule = Rule(
                "recurse", "end Knob::turn(int amount)",
                action=lambda ctx: knob.turn(),   # triggers itself
                scheduler=scheduler,
            )
            knob.subscribe(rule)
            with pytest.raises(CascadeError):
                knob.turn()

    def test_nested_cascades_allowed_below_limit(self, sentinel):
        counts = []
        knob_a, knob_b = Knob(), Knob()
        rule_a = Rule("a", "end Knob::turn(int amount)",
                      condition=lambda ctx: ctx.source is knob_a,
                      action=lambda ctx: knob_b.turn())
        rule_b = Rule("b", "end Knob::turn(int amount)",
                      condition=lambda ctx: ctx.source is knob_b,
                      action=lambda ctx: counts.append(1))
        knob_a.subscribe(rule_a)
        knob_b.subscribe(rule_b)
        knob_a.turn()
        assert counts == [1]


class TestDeferred:
    def test_runs_at_commit(self, sentinel_db):
        db = sentinel_db.db
        order = []
        rule = sentinel_db.create_rule(
            "d", "end Knob::turn(int amount)",
            action=lambda ctx: order.append("rule"),
            coupling="deferred",
        )
        knob = Knob()
        knob.subscribe(rule)
        with db.transaction():
            knob.turn()
            order.append("in-txn")
        order.append("after-commit")
        assert order == ["in-txn", "rule", "after-commit"]

    def test_deferred_updates_commit_with_txn(self, sentinel_db):
        db = sentinel_db.db
        ledger = Ledger()
        db.add(ledger)
        db.commit()
        rule = sentinel_db.create_rule(
            "d", "end Knob::turn(int amount)",
            action=lambda ctx: setattr(
                ledger, "entries", ledger.entries + ["turned"]
            ),
            coupling="deferred",
        )
        knob = Knob()
        knob.subscribe(rule)
        with db.transaction():
            knob.turn()
        db.evict_cache()
        assert db.fetch(ledger.oid).entries == ["turned"]

    def test_deferred_abort_cancels_txn(self, sentinel_db):
        db = sentinel_db.db
        ledger = Ledger()
        db.add(ledger)
        db.commit()
        rule = sentinel_db.create_rule(
            "d", "end Knob::turn(int amount)",
            action=lambda ctx: ctx.abort("deferred veto"),
            coupling="deferred",
        )
        knob = Knob()
        knob.subscribe(rule)
        with pytest.raises(TransactionAborted):
            with db.transaction():
                ledger.entries = ["should roll back"]
                knob.turn()
        assert ledger.entries == []

    def test_deferred_without_db_flushes_manually(self, sentinel):
        fired = []
        rule = sentinel.create_rule(
            "d", "end Knob::turn(int amount)",
            action=lambda ctx: fired.append(1),
            coupling="deferred",
        )
        knob = Knob()
        knob.subscribe(rule)
        knob.turn()
        assert fired == []
        assert sentinel.scheduler.pending_deferred() == 1
        sentinel.commit()
        assert fired == [1]

    def test_transaction_scope_flushes_without_db(self, sentinel):
        fired = []
        rule = sentinel.create_rule(
            "d", "end Knob::turn(int amount)",
            action=lambda ctx: fired.append(1),
            coupling="deferred",
        )
        knob = Knob()
        knob.subscribe(rule)
        with sentinel.transaction():
            knob.turn()
            assert fired == []
        assert fired == [1]


class TestDecoupled:
    def test_runs_after_commit_in_new_txn(self, sentinel_db):
        db = sentinel_db.db
        observed = []
        rule = sentinel_db.create_rule(
            "dc", "end Knob::turn(int amount)",
            action=lambda ctx: observed.append(db.current_transaction.id),
            coupling="decoupled",
        )
        knob = Knob()
        knob.subscribe(rule)
        with db.transaction() as txn:
            triggering_id = txn.id
            knob.turn()
            assert observed == []
        assert len(observed) == 1
        assert observed[0] != triggering_id

    def test_decoupled_abort_does_not_undo_trigger(self, sentinel_db):
        db = sentinel_db.db
        ledger = Ledger()
        db.add(ledger)
        db.commit()

        def veto(ctx):
            ctx.abort("decoupled veto")

        rule = sentinel_db.create_rule(
            "dc", "end Knob::turn(int amount)",
            action=veto, coupling="decoupled",
        )
        knob = Knob()
        knob.subscribe(rule)
        with db.transaction():
            ledger.entries = ["committed work"]
            knob.turn()
        # The triggering transaction committed despite the decoupled abort.
        assert ledger.entries == ["committed work"]
        assert sentinel_db.scheduler.stats.decoupled_aborts == 1

    def test_decoupled_without_txn_runs_immediately(self, sentinel):
        fired = []
        rule = sentinel.create_rule(
            "dc", "end Knob::turn(int amount)",
            action=lambda ctx: fired.append(1),
            coupling="decoupled",
        )
        knob = Knob()
        knob.subscribe(rule)
        knob.turn()
        assert fired == [1]


class TestErrorPolicy:
    def test_propagate_default(self, sentinel):
        rule = sentinel.create_rule(
            "boom", "end Knob::turn(int amount)",
            action=lambda ctx: 1 / 0,
        )
        knob = Knob()
        knob.subscribe(rule)
        with pytest.raises(ZeroDivisionError):
            knob.turn()

    def test_isolate_collects(self):
        scheduler = RuleScheduler(error_policy="isolate")
        system = Sentinel(adopt_class_rules=False)
        system.scheduler = scheduler
        with system:
            knob = Knob()
            bad = Rule("boom", "end Knob::turn(int amount)",
                       action=lambda ctx: 1 / 0, scheduler=scheduler)
            good = []
            ok = Rule("fine", "end Knob::turn(int amount)",
                      action=lambda ctx: good.append(1), scheduler=scheduler,
                      priority=-1)
            knob.subscribe(bad)
            knob.subscribe(ok)
            knob.turn()
            assert good == [1]
            assert len(scheduler.stats.errors) == 1

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            RuleScheduler(error_policy="shrug")

    def test_bad_resolver_rejected(self):
        with pytest.raises(ValueError):
            RuleScheduler(resolver="coinflip")


class TestStats:
    def test_counters(self, sentinel):
        rule = sentinel.create_rule(
            "r", "end Knob::turn(int amount)",
            condition=lambda ctx: ctx.param("amount") > 0,
            action=lambda ctx: None,
        )
        knob = Knob()
        knob.subscribe(rule)
        knob.turn(1)
        knob.turn(-1)
        stats = sentinel.scheduler.stats
        assert stats.triggered == 2
        assert stats.executed == 2
        assert stats.fired == 1
        assert stats.immediate == 2

    def test_reset(self, sentinel):
        sentinel.scheduler.stats.triggered = 5
        sentinel.scheduler.reset_stats()
        assert sentinel.scheduler.stats.triggered == 0
