"""Tests for event signatures and their parser."""

import pytest

from repro.core.events.signature import EventSignature, SignatureError
from repro.core.occurrence import EventModifier, EventOccurrence


def occ(cls="Employee", method="set_salary", modifier=EventModifier.END, mro=()):
    return EventOccurrence(
        class_name=cls, method=method, modifier=modifier, class_names=mro
    )


class TestParsing:
    def test_paper_signature(self):
        sig = EventSignature.parse("end Employee::Set-Salary(float x)")
        assert sig.modifier is EventModifier.END
        assert sig.class_name == "Employee"
        assert sig.method == "Set_Salary"
        assert sig.param_names == ("x",)
        assert sig.param_types == ("float",)

    def test_begin_and_before_synonyms(self):
        assert EventSignature.parse("begin A::m()").modifier is EventModifier.BEGIN
        assert EventSignature.parse("before A::m()").modifier is EventModifier.BEGIN
        assert EventSignature.parse("after A::m()").modifier is EventModifier.END

    def test_no_params(self):
        sig = EventSignature.parse("end Account::Deposit")
        assert sig.param_names == ()

    def test_empty_parens(self):
        assert EventSignature.parse("end A::m()").param_names == ()

    def test_multiple_params(self):
        sig = EventSignature.parse("begin P::move(int dx, int dy)")
        assert sig.param_names == ("dx", "dy")
        assert sig.param_types == ("int", "int")

    def test_untyped_params(self):
        sig = EventSignature.parse("begin Person::Marry(spouse)")
        assert sig.param_names == ("spouse",)
        assert sig.param_types == (None,)

    def test_pointer_types(self):
        sig = EventSignature.parse("begin Person::Marry(Person* spouse)")
        assert sig.param_names == ("spouse",)

    def test_case_insensitive_modifier(self):
        assert EventSignature.parse("END A::m()").modifier is EventModifier.END

    def test_bad_signatures_rejected(self):
        for bad in ("A::m()", "end ::m()", "end A::", "whenever A::m()", ""):
            with pytest.raises(SignatureError):
                EventSignature.parse(bad)

    def test_str_roundtrip(self):
        text = "end Employee::Set-Salary(float x)"
        sig = EventSignature.parse(text)
        assert EventSignature.parse(str(sig)) == sig


class TestMatching:
    def test_exact_match(self):
        sig = EventSignature.parse("end Employee::set_salary(float x)")
        assert sig.matches(occ())

    def test_modifier_mismatch(self):
        sig = EventSignature.parse("begin Employee::set_salary(float x)")
        assert not sig.matches(occ())

    def test_method_mismatch(self):
        sig = EventSignature.parse("end Employee::get_salary()")
        assert not sig.matches(occ())

    def test_class_mismatch(self):
        sig = EventSignature.parse("end Manager::set_salary(float x)")
        assert not sig.matches(occ())

    def test_subclass_occurrence_matches_base_signature(self):
        sig = EventSignature.parse("end Employee::set_salary(float x)")
        manager_occ = occ(cls="Manager", mro=("Manager", "Employee", "Reactive"))
        assert sig.matches(manager_occ)

    def test_hyphen_name_matches_underscore_method(self):
        sig = EventSignature.parse("end Employee::Set-Salary(float x)")
        assert sig.matches(occ(method="set_salary"))

    def test_case_insensitive_method_match(self):
        sig = EventSignature.parse("end Employee::SET_SALARY(float x)")
        assert sig.matches(occ())


class TestExplicitModifier:
    """Explicitly-raised events (footnote 3) are matchable by signature."""

    def test_parse_explicit(self):
        sig = EventSignature.parse("explicit Stock::opening_bell")
        assert sig.modifier is EventModifier.EXPLICIT

    def test_matches_raised_event(self):
        sig = EventSignature.parse("explicit Stock::opening_bell")
        assert sig.matches(
            occ(cls="Stock", method="opening_bell",
                modifier=EventModifier.EXPLICIT)
        )

    def test_rule_on_explicit_event(self):
        from repro.core import Reactive, Rule, Sentinel

        class Bell(Reactive):
            def ring(self):
                self.raise_event("rung", loudness=11)

        with Sentinel(adopt_class_rules=False):
            heard = []
            rule = Rule(
                "listener", "explicit Bell::rung",
                action=lambda ctx: heard.append(ctx.param("loudness")),
            )
            bell = Bell()
            bell.subscribe(rule)
            bell.ring()
            assert heard == [11]

    def test_dsl_accepts_explicit(self):
        from repro.core import parse_event
        from repro.core.events import Primitive

        event = parse_event("explicit Bell::rung or end Bell::ring()")
        assert len(event.children()) == 2
        assert isinstance(event.children()[0], Primitive)
