"""Tests for the Sentinel system façade, incl. persistence of rules/events."""

import pytest

from repro.core import Primitive, Rule, Sentinel, Sequence
from repro.workloads import Account, Stock


class TestFacade:
    def test_create_rule_binds_scheduler(self, sentinel):
        rule = sentinel.create_rule("r", "end Stock::set_price(float price)")
        assert rule.resolved_scheduler() is sentinel.scheduler
        assert "r" in sentinel.rules

    def test_create_event_registers(self, sentinel):
        event = sentinel.create_event(
            "end Stock::set_price(float price)", name="tick"
        )
        assert sentinel.events.get("tick") is event
        assert event in sentinel.detector.roots()

    def test_rule_from_spec(self, sentinel):
        rule = sentinel.rule_from_spec(
            "RULE S\nON end Stock::set_price(float price)\nIF price > 0"
        )
        assert rule.name == "S"
        assert "S" in sentinel.rules

    def test_monitor_registers_locally(self, sentinel):
        stock = Stock("A", 1.0)
        rule = sentinel.monitor(stock, on="end Stock::set_price(float price)")
        assert rule.name in sentinel.rules

    def test_stats_shape(self, sentinel):
        stats = sentinel.stats()
        for key in ("rules", "events", "triggered", "executed", "fired"):
            assert key in stats

    def test_db_and_path_mutually_exclusive(self, mem_db):
        with pytest.raises(ValueError):
            Sentinel(path="/tmp/x", db=mem_db)

    def test_context_manager_installs_scheduler(self):
        from repro.core.runtime import current_scheduler

        system = Sentinel(adopt_class_rules=False)
        outside = current_scheduler()
        with system:
            assert current_scheduler() is system.scheduler
        assert current_scheduler() is outside

    def test_persist_requires_db(self, sentinel):
        rule = sentinel.create_rule("r", "end Stock::set_price(float price)")
        with pytest.raises(RuntimeError):
            sentinel.persist(rule)


class TestRulePersistence:
    """Rules and events are first-class persistent objects (§3.4)."""

    def test_rule_roundtrip_through_storage(self, tmp_path):
        path = str(tmp_path / "db")
        system = Sentinel(path=path, adopt_class_rules=False)
        with system:
            rule = system.rule_from_spec(
                """
                RULE Persisted
                ON end Account::deposit(float amount)
                IF amount > 100
                DO rule.big_deposits = getattr(rule, "big_deposits", 0) + 1
                """,
                persist=True,
            )
            system.db.set_root("the-rule", rule)
            system.db.commit()
            account = Account("X", 0.0)
            account.subscribe(rule)
            account.deposit(500.0)
            assert rule.big_deposits == 1
            system.db.commit()
            system.close()

        reloaded = Sentinel(path=path, adopt_class_rules=False)
        with reloaded:
            rule2 = reloaded.db.get_root("the-rule")
            assert rule2.name == "Persisted"
            assert rule2.big_deposits == 1
            rule2.bind_scheduler(reloaded.scheduler)
            account = Account("Y", 0.0)
            account.subscribe(rule2)
            account.deposit(50.0)      # below threshold
            account.deposit(200.0)
            assert rule2.big_deposits == 2
            reloaded.close()

    def test_composite_event_roundtrip(self, tmp_path):
        path = str(tmp_path / "db")
        system = Sentinel(path=path, adopt_class_rules=False)
        with system:
            deposit = Primitive("end Account::deposit(float x)")
            withdraw = Primitive("before Account::withdraw(float x)")
            sequence = Sequence(deposit, withdraw, name="DepWit")
            system.persist(sequence)
            system.db.set_root("seq", sequence)
            system.db.commit()
            system.close()

        reloaded = Sentinel(path=path, adopt_class_rules=False)
        with reloaded:
            sequence2 = reloaded.db.get_root("seq")
            assert sequence2.name == "DepWit"
            signals = []

            class Listener:
                def on_event(self, event, occurrence):
                    signals.append(occurrence)

            sequence2.add_listener(Listener())
            account = Account("Z", 100.0)
            account.subscribe(sequence2)
            account.deposit(10.0)
            account.withdraw(5.0)
            assert len(signals) == 1
            reloaded.close()

    def test_load_rules_helper(self, tmp_path):
        path = str(tmp_path / "db")
        system = Sentinel(path=path, adopt_class_rules=False)
        with system:
            for i in range(3):
                system.rule_from_spec(
                    f"RULE stored-{i}\nON end Account::deposit(float amount)",
                    persist=True,
                )
            system.db.commit()
            system.close()

        reloaded = Sentinel(path=path, adopt_class_rules=False)
        with reloaded:
            rules = reloaded.load_rules()
            assert {r.name for r in rules} == {"stored-0", "stored-1", "stored-2"}
            assert all(
                r.resolved_scheduler() is reloaded.scheduler for r in rules
            )
            reloaded.close()

    def test_rule_deletion_like_any_object(self, sentinel_db):
        db = sentinel_db.db
        rule = sentinel_db.create_rule(
            "doomed", "end Account::deposit(float amount)", persist=True
        )
        oid = rule.oid
        with db.transaction():
            db.delete(rule)
        from repro.oodb import ObjectNotFound

        with pytest.raises(ObjectNotFound):
            db.fetch(oid)

    def test_rule_updates_are_transactional(self, sentinel_db):
        db = sentinel_db.db
        rule = sentinel_db.create_rule(
            "txnal", "end Account::deposit(float amount)", persist=True
        )
        try:
            with db.transaction():
                rule.priority = 42
                raise RuntimeError
        except RuntimeError:
            pass
        assert rule.priority == 0
