"""Tests for scheduler tracing and a property check on conflict order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Reactive, Rule, RuleScheduler, Sentinel, event_method


class Pad(Reactive):
    @event_method
    def tap(self, n=0):
        return n


class TestTracing:
    def test_disabled_by_default(self, sentinel):
        rule = Rule("r", "end Pad::tap(int n)", action=lambda ctx: None)
        pad = Pad()
        pad.subscribe(rule)
        pad.tap()
        assert sentinel.scheduler.trace() == []

    def test_records_fired_and_skipped(self, sentinel):
        sentinel.scheduler.enable_tracing()
        rule = Rule(
            "gate", "end Pad::tap(int n)",
            condition=lambda ctx: ctx.param("n") > 0,
            action=lambda ctx: None,
        )
        pad = Pad()
        pad.subscribe(rule)
        pad.tap(1)
        pad.tap(0)
        entries = sentinel.scheduler.trace()
        assert [e.fired for e in entries] == [True, False]
        assert all(e.rule_name == "gate" for e in entries)
        assert "fired" in str(entries[0])
        assert "skipped" in str(entries[1])

    def test_records_errors(self):
        scheduler = RuleScheduler(error_policy="isolate")
        scheduler.enable_tracing()
        system = Sentinel(adopt_class_rules=False)
        system.scheduler = scheduler
        with system:
            rule = Rule("boom", "end Pad::tap(int n)",
                        action=lambda ctx: 1 / 0, scheduler=scheduler)
            pad = Pad()
            pad.subscribe(rule)
            pad.tap()
        entries = scheduler.trace()
        assert len(entries) == 1
        assert entries[0].error is not None
        assert "error" in str(entries[0])

    def test_depth_recorded_for_cascades(self, sentinel):
        sentinel.scheduler.enable_tracing()
        inner_pad = Pad()
        outer_rule = Rule(
            "outer", "end Pad::tap(int n)",
            condition=lambda ctx: ctx.param("n") == 1,
            action=lambda ctx: inner_pad.tap(2),
        )
        inner_rule = Rule(
            "inner", "end Pad::tap(int n)",
            condition=lambda ctx: ctx.param("n") == 2,
            action=lambda ctx: None,
        )
        outer_pad = Pad()
        outer_pad.subscribe(outer_rule)
        inner_pad.subscribe(inner_rule)
        outer_pad.tap(1)
        by_name = {e.rule_name: e for e in sentinel.scheduler.trace() if e.fired}
        assert by_name["inner"].depth > by_name["outer"].depth

    def test_bounded_buffer(self, sentinel):
        sentinel.scheduler.enable_tracing(limit=5)
        rule = Rule("r", "end Pad::tap(int n)", action=lambda ctx: None)
        pad = Pad()
        pad.subscribe(rule)
        for i in range(20):
            pad.tap(i)
        assert len(sentinel.scheduler.trace()) == 5

    def test_disable(self, sentinel):
        sentinel.scheduler.enable_tracing()
        sentinel.scheduler.disable_tracing()
        rule = Rule("r", "end Pad::tap(int n)", action=lambda ctx: None)
        pad = Pad()
        pad.subscribe(rule)
        pad.tap()
        assert sentinel.scheduler.trace() == []


class TestConflictResolutionProperty:
    @given(st.lists(st.integers(min_value=-10, max_value=10),
                    min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_priority_order_always_sorted(self, priorities):
        """For any set of rule priorities, one occurrence executes the
        rules in non-increasing priority order, FIFO within ties."""
        scheduler = RuleScheduler()
        system = Sentinel(adopt_class_rules=False)
        system.scheduler = scheduler
        order: list[tuple[int, int]] = []
        with system:
            pad = Pad()
            for index, priority in enumerate(priorities):
                rule = Rule(
                    f"p{index}", "end Pad::tap(int n)",
                    action=lambda ctx, i=index, p=priority: order.append((p, i)),
                    priority=priority,
                    scheduler=scheduler,
                )
                pad.subscribe(rule)
            pad.tap()
        executed_priorities = [p for p, _i in order]
        assert executed_priorities == sorted(executed_priorities, reverse=True)
        # FIFO within equal priorities:
        for priority in set(priorities):
            indices = [i for p, i in order if p == priority]
            assert indices == sorted(indices)
