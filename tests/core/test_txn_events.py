"""Tests for transaction events (rules on transaction boundaries)."""

import pytest

from repro.core.txn_events import TransactionMonitor
from repro.oodb import Persistent, TransactionAborted


class Item(Persistent):
    def __init__(self, n=0):
        super().__init__()
        self.n = n


class TestTransactionMonitor:
    def test_counts_lifecycle(self, sentinel_db):
        monitor = sentinel_db.transaction_monitor()
        db = sentinel_db.db
        with db.transaction():
            db.add(Item())
        try:
            with db.transaction():
                db.add(Item())
                raise RuntimeError
        except RuntimeError:
            pass
        assert monitor.begins == 2
        assert monitor.commits == 1
        assert monitor.aborts == 1

    def test_rule_on_commit(self, sentinel_db):
        monitor = sentinel_db.transaction_monitor()
        db = sentinel_db.db
        commits = []
        sentinel_db.monitor(
            [monitor],
            on="end TransactionMonitor::txn_commit(int txn_id, int objects_touched)",
            action=lambda ctx: commits.append(
                (ctx.param("txn_id"), ctx.param("objects_touched"))
            ),
        )
        with db.transaction() as txn:
            db.add(Item())
            db.add(Item())
            txn_id = txn.id
        assert commits == [(txn_id, 2)]

    def test_rule_on_abort(self, sentinel_db):
        monitor = sentinel_db.transaction_monitor()
        db = sentinel_db.db
        aborts = []
        sentinel_db.monitor(
            [monitor],
            on="end TransactionMonitor::txn_abort(int txn_id, int objects_touched)",
            action=lambda ctx: aborts.append(ctx.param("txn_id")),
        )
        try:
            with db.transaction():
                db.add(Item())
                raise RuntimeError
        except RuntimeError:
            pass
        assert len(aborts) == 1

    def test_large_transaction_condition(self, sentinel_db):
        monitor = sentinel_db.transaction_monitor()
        db = sentinel_db.db
        warnings = []
        sentinel_db.monitor(
            [monitor],
            on="end TransactionMonitor::txn_commit(int txn_id, int objects_touched)",
            condition=lambda ctx: ctx.param("objects_touched") > 5,
            action=lambda ctx: warnings.append(ctx.param("objects_touched")),
        )
        with db.transaction():
            db.add(Item())
        assert warnings == []
        with db.transaction():
            for _ in range(10):
                db.add(Item())
        assert warnings == [10]

    def test_no_reentrant_explosion_with_decoupled_rule(self, sentinel_db):
        """A decoupled rule on commit runs in its own transaction; that
        nested commit must not re-trigger the rule forever."""
        monitor = sentinel_db.transaction_monitor()
        db = sentinel_db.db
        fired = []

        def decoupled_action(ctx):
            fired.append(ctx.param("txn_id"))
            db.add(Item())  # opens an implicit txn inside the decoupled one

        rule = sentinel_db.monitor(
            [monitor],
            on="end TransactionMonitor::txn_commit(int txn_id, int objects_touched)",
            action=decoupled_action,
            coupling="decoupled",
        )
        with db.transaction():
            db.add(Item())
        assert len(fired) == 1
        rule.disable()

    def test_monitor_requires_db(self, sentinel):
        with pytest.raises(RuntimeError):
            sentinel.transaction_monitor()

    def test_detach_stops_events(self, sentinel_db):
        monitor = sentinel_db.transaction_monitor()
        db = sentinel_db.db
        with db.transaction():
            db.add(Item())
        assert monitor.commits == 1
        monitor.detach()
        with db.transaction():
            db.add(Item())
        assert monitor.commits == 1

    def test_attach_is_idempotent(self, sentinel_db):
        monitor = sentinel_db.transaction_monitor()
        monitor.attach(sentinel_db.db.txn_manager)  # second attach
        db = sentinel_db.db
        with db.transaction():
            db.add(Item())
        assert monitor.commits == 1
