"""Decoupled-rule worker pool: bounded handoff, retry, attribution.

The pool itself (``repro.core.workers``) runs plain callables; the
interesting behavior is the scheduler/Sentinel integration — decoupled
rules leaving the committing thread, deadlock-retry between two workers
writing the same object pair in opposite orders, saturation falling back
inline, and the audit trail naming the worker thread that ran each rule.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import Reactive, Sentinel, event_method
from repro.core.workers import RuleWorkerPool
from repro.obs.audit import audit_log, read_entries
from repro.oodb import Database, Persistent
from repro.oodb.schema import ClassRegistry


class Knob(Reactive):
    @event_method
    def turn(self, amount: int = 1) -> int:
        return amount


@pytest.fixture
def registry():
    return ClassRegistry()


@pytest.fixture
def pooled(tmp_path, registry):
    """Sentinel over a locking database with a 2-worker pool attached."""
    db = Database(str(tmp_path / "db"), registry=registry, locking=True)
    system = Sentinel(db=db, adopt_class_rules=False)
    system.enable_worker_pool(max_workers=2, queue_limit=8)
    with system:
        yield system
    system.close()


class TestPoolMechanics:
    def test_rejects_when_full_and_counts(self):
        pool = RuleWorkerPool(max_workers=1, queue_limit=1)
        release = threading.Event()
        started = threading.Event()

        def blocker() -> None:
            started.set()
            release.wait(10.0)

        assert pool.submit(blocker) is True
        started.wait(5.0)
        # The single slot is taken; the next submit must be rejected,
        # leaving the job with the caller.
        assert pool.submit(lambda: None, label="overflow") is False
        release.set()
        assert pool.drain(timeout=10.0) is True
        stats = pool.stats()
        assert stats["rejected"] == 1
        assert stats["completed"] == 1
        assert stats["backlog"] == 0
        pool.shutdown()

    def test_job_exception_is_isolated(self):
        pool = RuleWorkerPool(max_workers=1, queue_limit=4)

        def boom() -> None:
            raise RuntimeError("job bug")

        assert pool.submit(boom) is True
        assert pool.drain(timeout=10.0) is True
        assert pool.stats()["failed"] == 1
        # The worker survived: it still runs later jobs.
        ran = threading.Event()
        assert pool.submit(ran.set) is True
        assert pool.drain(timeout=10.0) is True
        assert ran.is_set()
        pool.shutdown()

    def test_closed_pool_refuses_work(self):
        pool = RuleWorkerPool(max_workers=1, queue_limit=4)
        pool.shutdown()
        assert pool.submit(lambda: None) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            RuleWorkerPool(max_workers=0)
        with pytest.raises(ValueError):
            RuleWorkerPool(queue_limit=0)
        with pytest.raises(ValueError):
            RuleWorkerPool(max_retries=-1)


class TestDecoupledOffThread:
    def test_decoupled_rule_runs_on_worker_thread(self, pooled):
        db = pooled.db
        ran_on: list[str] = []
        rule = pooled.create_rule(
            "offthread", "end Knob::turn(int amount)",
            action=lambda ctx: ran_on.append(threading.current_thread().name),
            coupling="decoupled",
        )
        knob = Knob()
        knob.subscribe(rule)
        with db.transaction():
            knob.turn()
        assert pooled.drain_decoupled(timeout=10.0) is True
        assert len(ran_on) == 1
        assert ran_on[0].startswith("rule-worker")
        assert pooled.scheduler.stats.decoupled == 1

    def test_triggering_thread_does_not_pay_rule_latency(self, pooled):
        db = pooled.db
        gate = threading.Event()
        rule = pooled.create_rule(
            "slow", "end Knob::turn(int amount)",
            action=lambda ctx: gate.wait(10.0),
            coupling="decoupled",
        )
        knob = Knob()
        knob.subscribe(rule)
        start = time.perf_counter()
        with db.transaction():
            knob.turn()
        handoff = time.perf_counter() - start
        # The commit returned while the rule is still blocked on `gate`.
        assert handoff < 5.0
        assert pooled.scheduler.worker_pool.backlog() == 1
        gate.set()
        assert pooled.drain_decoupled(timeout=10.0) is True

    def test_saturated_pool_falls_back_inline(self, tmp_path, registry):
        db = Database(
            str(tmp_path / "db"), registry=registry, locking=True
        )
        system = Sentinel(db=db, adopt_class_rules=False)
        system.enable_worker_pool(max_workers=1, queue_limit=1)
        with system:
            release = threading.Event()
            ran_on: list[str] = []

            def action(ctx):
                ran_on.append(threading.current_thread().name)
                release.wait(5.0)

            rule = system.create_rule(
                "sat", "end Knob::turn(int amount)",
                action=action, coupling="decoupled",
            )
            knob = Knob()
            knob.subscribe(rule)
            with db.transaction():
                knob.turn()   # occupies the only slot
                knob.turn()   # rejected -> must run inline post-commit
            release.set()
            assert system.drain_decoupled(timeout=10.0) is True
            assert len(ran_on) == 2
            assert any(name.startswith("rule-worker") for name in ran_on)
            assert pooled_stats_rejected(system) >= 1
            assert system.scheduler.stats.decoupled_rejected >= 1
        system.close()


def pooled_stats_rejected(system) -> int:
    pool = system.scheduler.worker_pool
    return 0 if pool is None else pool.stats()["rejected"]


class TestWorkerDeadlockRetry:
    def test_opposite_order_rules_converge_with_audit_trail(
        self, pooled, tmp_path
    ):
        """Two decoupled rules write the same object pair in opposite

        orders from two worker threads.  Deadlocks abort one victim,
        the retry loop reruns it, every increment survives, and the
        audit trail names the worker thread for each firing."""
        db = pooled.db
        registry = db.registry

        class Pair(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.value = 0

        with db.transaction():
            first = db.add(Pair())
            second = db.add(Pair())

        audit_log.open(str(tmp_path / "audit.jsonl"))
        try:
            def bump(order):
                def action(ctx):
                    for oid in order:
                        db.fetch(oid).value += 1
                return action

            forward = pooled.create_rule(
                "fwd", "end Knob::turn(int amount)",
                action=bump((first, second)), coupling="decoupled",
            )
            backward = pooled.create_rule(
                "bwd", "end Knob::turn(int amount)",
                action=bump((second, first)), coupling="decoupled",
            )
            knob = Knob()
            knob.subscribe(forward)
            knob.subscribe(backward)

            rounds = 20
            for _ in range(rounds):
                with db.transaction():
                    knob.turn()
                # Drain each round: keeps the bounded queue from
                # overflowing into the inline fallback, so every firing
                # below is attributable to a worker thread — while the
                # two jobs of each round still race each other.
                assert pooled.drain_decoupled(timeout=30.0) is True

            stats = pooled.scheduler.stats
            assert stats.decoupled == 2 * rounds
            assert stats.decoupled_errors == 0
            # Converged: every one of the 2*rounds rule executions
            # applied both increments exactly once.
            with db.snapshot() as snap:
                assert snap.record(first)["attrs"]["value"] == 2 * rounds
                assert snap.record(second)["attrs"]["value"] == 2 * rounds
            assert db.locks.waiting_edges() == {}

            entries = list(read_entries(str(tmp_path / "audit.jsonl")))
            fired = [e for e in entries if e["outcome"] == "fired"]
            assert len(fired) == 2 * rounds
            workers = {e.get("thread", "") for e in fired}
            assert all(name.startswith("rule-worker") for name in workers)
        finally:
            audit_log.close()
