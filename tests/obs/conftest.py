"""Fixtures for the observability tests: no obs state may leak.

The observability layer is deliberately process-global (tracer, metrics
registry, signal hub, audit log) — so every test here starts and ends
with all of it disabled and empty.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    audit_log,
    engine_signals,
    flight_recorder,
    metrics,
    slow_op_log,
    telemetry,
    tracer,
)


def _reset_all() -> None:
    tracer.disable()
    tracer.clear()
    tracer.sample_interval = 1
    telemetry.close()
    metrics.reset()
    for prefix in list(metrics._collectors):
        if prefix not in ("pipeline", "flight"):
            metrics.unregister_collector(prefix)
    audit_log.close()
    slow_op_log.close()
    slow_op_log.reset_thresholds()
    flight_recorder.clear()
    flight_recorder.configure(
        capacity=512, dump_dir="", dump_keep=8, enabled=True
    )
    engine_signals._sinks.clear()
    engine_signals.active = False
    engine_signals.reset_suppression()
    engine_signals.depth_threshold = 16
    engine_signals.fsync_slow_us = 10_000.0


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every obs test starts and ends with pristine observability state."""
    _reset_all()
    yield
    _reset_all()
