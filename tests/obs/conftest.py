"""Fixtures for the observability tests: no tracer state may leak."""

from __future__ import annotations

import pytest

from repro.obs import metrics, tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every obs test starts and ends with a disabled, empty tracer."""
    tracer.disable()
    tracer.clear()
    metrics.reset()
    yield
    tracer.disable()
    tracer.clear()
    metrics.reset()
