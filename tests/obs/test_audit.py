"""The durable rule-firing audit trail: rotation, outcomes, sampling."""

import json
import os

import pytest

from repro.core.interface import event_method
from repro.core.reactive import Reactive
from repro.core.system import Sentinel
from repro.obs import audit_log, tracer
from repro.obs.audit import AuditLog, read_entries


class TestAuditLog:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog()
        log.open(path)
        log.record("r1", seq=1, coupling="immediate", condition=True,
                   outcome="fired", latency_us=12.34)
        log.record("r2", seq=2, coupling="deferred", condition=False,
                   outcome="rejected")
        log.close()
        entries = list(read_entries(path))
        assert [e["rule"] for e in entries] == ["r1", "r2"]
        assert entries[0]["outcome"] == "fired"
        assert entries[0]["latency_us"] == 12.3
        assert entries[1]["condition"] is False
        assert all("ts" in e for e in entries)

    def test_rotation_by_size(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog()
        log.open(path, max_bytes=300, keep=2)
        for i in range(50):
            log.record(f"rule{i}", seq=i, coupling="immediate",
                       condition=True, outcome="fired")
        log.close()
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert os.path.exists(path + ".2")
        assert not os.path.exists(path + ".3")  # keep=2 bounds retention

    def test_read_entries_oldest_first_across_generations(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog()
        log.open(path, max_bytes=300, keep=3)
        for i in range(30):
            log.record(f"rule{i}", seq=i, coupling="immediate",
                       condition=True, outcome="fired")
        log.close()
        seqs = [e["seq"] for e in read_entries(path)]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 29
        active_only = [e["seq"] for e in read_entries(path, include_rotated=False)]
        assert len(active_only) < len(seqs)

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"rule": "ok", "seq": 1}) + "\n")
            handle.write('{"rule": "torn", "se')  # crash mid-append
        assert [e["rule"] for e in read_entries(path)] == ["ok"]

    def test_open_validates_knobs(self, tmp_path):
        log = AuditLog()
        with pytest.raises(ValueError):
            log.open(str(tmp_path / "a"), max_bytes=0)
        with pytest.raises(ValueError):
            log.open(str(tmp_path / "a"), keep=0)

    def test_record_without_open_is_a_noop(self):
        AuditLog().record("r", seq=1, coupling="immediate",
                          condition=True, outcome="fired")


class _Stock(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.price = 0.0

    @event_method
    def set_price(self, price: float) -> None:
        self.price = price


class TestSchedulerIntegration:
    def test_every_outcome_is_audited(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        with Sentinel(error_policy="isolate", adopt_class_rules=False) as s:
            s.enable_audit(path)
            stock = _Stock()
            s.monitor([stock], on="end _Stock::set_price(float price)",
                      action=lambda ctx: None, name="fires")
            s.monitor([stock], on="end _Stock::set_price(float price)",
                      condition=lambda ctx: False,
                      action=lambda ctx: None, name="rejects")
            s.monitor([stock], on="end _Stock::set_price(float price)",
                      action=lambda ctx: 1 / 0, name="errors")
            stock.set_price(1.0)
        audit_log.close()
        by_rule = {e["rule"]: e for e in read_entries(path)}
        assert by_rule["fires"]["outcome"] == "fired"
        assert by_rule["fires"]["condition"] is True
        assert by_rule["fires"]["latency_us"] >= 0.0
        assert by_rule["fires"]["coupling"] == "immediate"
        assert by_rule["rejects"]["outcome"] == "rejected"
        assert by_rule["errors"]["outcome"] == "error"
        assert "ZeroDivisionError" in by_rule["errors"]["error"]

    def test_audit_is_unaffected_by_trace_sampling(self, tmp_path):
        """Sampling skips trace chains; the audit trail still sees every
        firing."""
        path = str(tmp_path / "audit.jsonl")
        with Sentinel(adopt_class_rules=False) as s:
            s.enable_audit(path)
            stock = _Stock()
            s.monitor([stock], on="end _Stock::set_price(float price)",
                      action=lambda ctx: None, name="watch")
            tracer.enable(sample=1000)  # effectively skip every chain
            for i in range(20):
                stock.set_price(float(i))
        audit_log.close()
        entries = list(read_entries(path))
        assert len(entries) == 20  # every firing audited
        assert len(tracer.find("rule")) == 0  # no chain sampled
