"""The OpenMetrics/health exporter: rendering, checks, HTTP endpoints."""

import json
import os
import time
import urllib.error
import urllib.request

from repro.obs.exporter import (
    OPENMETRICS_CONTENT_TYPE,
    ObservabilityServer,
    build_checks,
    parse_metric_name,
    render_openmetrics,
    run_checks,
)
from repro.obs.metrics import MetricsRegistry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_metrics.txt")


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events.raised").inc(3)
    registry.counter('rule_firings{rule=audit"salary\\check,outcome=fired}').inc(2)
    registry.counter("rule_firings{rule=guard,outcome=error}").inc(1)
    registry.counter("rule_firings{rule=multi\nline,outcome=rejected}").inc(4)
    histogram = registry.histogram("rule_us")
    for value in range(1, 101):
        histogram.record(float(value))
    return registry


class TestOpenMetricsRendering:
    def test_matches_golden_file(self):
        rendered = render_openmetrics(_golden_registry().snapshot())
        with open(GOLDEN) as handle:
            assert rendered == handle.read()

    def test_golden_covers_format_requirements(self):
        """The golden file itself exercises naming, TYPE/HELP lines, and
        all three label escapes — keep it that way."""
        with open(GOLDEN) as handle:
            golden = handle.read()
        assert "# TYPE events_raised counter" in golden  # '.' sanitized
        assert "# HELP events_raised" in golden
        assert "# TYPE rule_us summary" in golden
        assert '\\"' in golden  # quote escaped
        assert "\\\\" in golden  # backslash escaped
        assert "\\n" in golden  # newline escaped
        assert golden.endswith("# EOF\n")

    def test_empty_snapshot_is_valid(self):
        assert render_openmetrics({}) == "# EOF\n"

    def test_empty_histogram_renders_count_and_sum_only(self):
        registry = MetricsRegistry()
        registry.histogram("idle_us")
        body = render_openmetrics(registry.snapshot())
        assert "idle_us_count 0" in body
        assert "idle_us_sum 0" in body
        assert "quantile" not in body
        assert "_bucket" not in body  # buckets only once samples exist

    def test_histogram_renders_cumulative_bucket_family(self):
        """A live histogram gets a true `histogram` family under
        `<base>_hist` (its own name: a family cannot be two types, and
        the summary already owns `<base>_count`/`_sum`)."""
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_us")
        histogram.record(3.0)      # <= le="4.642"
        histogram.record(50.0)     # <= le="100"
        histogram.record(5e8)      # past the top bound -> +Inf only
        body = render_openmetrics(registry.snapshot())
        assert "# TYPE lat_us_hist histogram" in body
        assert 'lat_us_hist_bucket{le="4.642"} 1' in body
        assert 'lat_us_hist_bucket{le="100"} 2' in body
        assert 'lat_us_hist_bucket{le="+Inf"} 3' in body
        assert "lat_us_hist_count 3" in body
        # Cumulative: counts never decrease across increasing bounds.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in body.splitlines()
            if line.startswith("lat_us_hist_bucket")
        ]
        assert counts == sorted(counts)
        # The summary family is still present alongside.
        assert "# TYPE lat_us summary" in body
        assert 'lat_us{quantile="0.5"}' in body

    def test_parse_metric_name_roundtrip(self):
        base, labels = parse_metric_name("rule_firings{rule=r1,outcome=fired}")
        assert base == "rule_firings"
        assert labels == {"rule": "r1", "outcome": "fired"}
        assert parse_metric_name("plain") == ("plain", {})


class _FakeScheduler:
    def __init__(self, pending: int) -> None:
        self._pending = pending

    def pending_deferred(self) -> int:
        return self._pending


class _FakeRecovery:
    def __init__(self, clean: bool) -> None:
        self.clean = clean
        self.redone_updates = 0 if clean else 7


class _FakeWal:
    def __init__(self, path: str) -> None:
        self.path = path


class _FakeDb:
    def __init__(self, wal_path: str, clean: bool = True) -> None:
        self.wal = _FakeWal(wal_path)
        self.last_recovery = _FakeRecovery(clean)


class _FakeSentinel:
    def __init__(self, db=None, scheduler=None) -> None:
        self.db = db
        self.scheduler = scheduler


class TestHealthChecks:
    def test_all_ok_without_engine(self):
        report = run_checks(build_checks(registry=MetricsRegistry()))
        assert report["status"] == "ok"
        assert set(report["checks"]) == {
            "wal_writable", "error_rate", "scheduler_depth", "worker_pool",
            "recovery_clean", "windowed_error_rate",
        }

    def test_error_rate_degrades(self):
        registry = MetricsRegistry()
        registry.counter("rule_firings{rule=r,outcome=error}").inc(3)
        registry.counter("rule_firings{rule=r,outcome=fired}").inc(1)
        report = run_checks(build_checks(registry=registry))
        assert report["status"] == "degraded"
        assert not report["checks"]["error_rate"]["ok"]
        assert "3/4" in report["checks"]["error_rate"]["detail"]

    def test_scheduler_depth_degrades(self):
        sentinel = _FakeSentinel(scheduler=_FakeScheduler(pending=5000))
        report = run_checks(
            build_checks(sentinel, registry=MetricsRegistry(), max_pending=10)
        )
        assert not report["checks"]["scheduler_depth"]["ok"]

    def test_unclean_recovery_degrades(self, tmp_path):
        wal = tmp_path / "wal.log"
        wal.write_bytes(b"")
        sentinel = _FakeSentinel(db=_FakeDb(str(wal), clean=False))
        report = run_checks(build_checks(sentinel, registry=MetricsRegistry()))
        assert not report["checks"]["recovery_clean"]["ok"]
        assert "7" in report["checks"]["recovery_clean"]["detail"]

    def test_missing_wal_degrades(self, tmp_path):
        sentinel = _FakeSentinel(db=_FakeDb(str(tmp_path / "gone.log")))
        report = run_checks(build_checks(sentinel, registry=MetricsRegistry()))
        assert not report["checks"]["wal_writable"]["ok"]

    def test_raising_check_counts_as_degraded(self):
        def broken():
            raise RuntimeError("boom")

        report = run_checks({"broken": broken})
        assert report["status"] == "degraded"
        assert "boom" in report["checks"]["broken"]["detail"]


class TestServer:
    def test_metrics_endpoint(self):
        registry = _golden_registry()
        with ObservabilityServer(registry=registry) as server:
            response = urllib.request.urlopen(server.url + "/metrics")
            assert response.status == 200
            assert response.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            body = response.read().decode()
            assert body.endswith("# EOF\n")
            assert "rule_us_count 100" in body

    def test_vars_endpoint_is_json(self):
        registry = _golden_registry()
        with ObservabilityServer(registry=registry) as server:
            body = urllib.request.urlopen(server.url + "/vars").read()
            snapshot = json.loads(body)
            assert snapshot["events.raised"] == 3
            assert snapshot["rule_us"]["count"] == 100

    def test_healthz_degraded_returns_503(self):
        registry = MetricsRegistry()
        registry.counter("rule_firings{rule=r,outcome=error}").inc(9)
        registry.counter("rule_firings{rule=r,outcome=fired}").inc(1)
        with ObservabilityServer(registry=registry) as server:
            try:
                urllib.request.urlopen(server.url + "/healthz")
                raise AssertionError("expected HTTP 503")
            except urllib.error.HTTPError as error:
                assert error.code == 503
                report = json.loads(error.read())
                assert report["status"] == "degraded"

    def test_healthz_ok_returns_200(self):
        with ObservabilityServer(registry=MetricsRegistry()) as server:
            response = urllib.request.urlopen(server.url + "/healthz")
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"

    def test_unknown_path_is_404(self):
        with ObservabilityServer(registry=MetricsRegistry()) as server:
            try:
                urllib.request.urlopen(server.url + "/nope")
                raise AssertionError("expected HTTP 404")
            except urllib.error.HTTPError as error:
                assert error.code == 404

    def test_history_disabled_returns_503(self):
        with ObservabilityServer(registry=MetricsRegistry()) as server:
            try:
                urllib.request.urlopen(server.url + "/history")
                raise AssertionError("expected HTTP 503")
            except urllib.error.HTTPError as error:
                assert error.code == 503
                assert json.loads(error.read())["enabled"] is False

    def test_history_index_and_samples(self, tmp_path):
        from repro.obs.tsdb import telemetry

        registry = MetricsRegistry()
        registry.counter("events.raised").inc(3)
        telemetry.open(
            str(tmp_path / "t"), interval=60.0, registry=registry,
            start=False,
        )
        try:
            now = time.time()
            assert telemetry.collector.scrape_once(now=now - 30)
            registry.counter("events.raised").inc(2)
            assert telemetry.collector.scrape_once(now=now)
            with ObservabilityServer(registry=registry) as server:
                index = json.loads(
                    urllib.request.urlopen(server.url + "/history").read()
                )
                assert index["enabled"] is True
                assert index["scrapes"] == 2
                assert "events.raised" in index["series"]
                samples = json.loads(
                    urllib.request.urlopen(
                        server.url + "/history?series=events.raised"
                    ).read()
                )
                assert [v for _, v in samples["samples"]] == [3.0, 5.0]
                windowed = json.loads(
                    urllib.request.urlopen(
                        server.url
                        + "/history?series=events.raised&window=600"
                    ).read()
                )
                assert windowed["value"] == 4.0  # avg(3, 5)
                assert windowed["rate"] is not None
        finally:
            telemetry.close()

    def test_history_bad_params_is_400(self, tmp_path):
        from repro.obs.tsdb import telemetry

        telemetry.open(str(tmp_path / "t"), interval=60.0, start=False)
        try:
            with ObservabilityServer(registry=MetricsRegistry()) as server:
                try:
                    urllib.request.urlopen(
                        server.url + "/history?series=x&start=banana"
                    )
                    raise AssertionError("expected HTTP 400")
                except urllib.error.HTTPError as error:
                    assert error.code == 400
        finally:
            telemetry.close()

    def test_reader_thread_sees_live_writes(self):
        """The exporter thread reads while this (engine) thread writes."""
        registry = MetricsRegistry()
        counter = registry.counter("spin")
        with ObservabilityServer(registry=registry) as server:
            for i in range(50):
                counter.inc()
                registry.histogram("spin_us").record(float(i))
                body = urllib.request.urlopen(server.url + "/metrics").read()
                assert b"spin_total" in body
        assert counter.value == 50
