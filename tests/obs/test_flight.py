"""The always-on flight recorder: ring semantics, dumps, engine hooks."""

import json

import pytest

from repro.core.reactive import Reactive
from repro.core.scheduler import CascadeError
from repro.core.system import Sentinel
from repro.obs.flight import FlightRecorder, flight_recorder
from repro.obs.metrics import metrics


class Thing(Reactive):
    __event_interface__ = {"poke": "end"}

    def poke(self):
        return "poked"


class TestRing:
    def test_record_and_snapshot_oldest_first(self):
        fr = FlightRecorder(capacity=4)
        fr.record("query", "Emp", 10, "extent_scan")
        fr.record("txn", "commit", 1, "changes=2")
        snap = fr.snapshot()
        assert [e["kind"] for e in snap] == ["query", "txn"]
        assert snap[0]["name"] == "Emp"
        assert snap[0]["value"] == 10
        assert snap[0]["detail"] == "extent_scan"
        assert snap[0]["ts"] > 0

    def test_capacity_evicts_oldest(self):
        fr = FlightRecorder(capacity=3)
        for i in range(10):
            fr.record("query", f"c{i}")
        snap = fr.snapshot()
        assert len(snap) == 3
        assert [e["name"] for e in snap] == ["c7", "c8", "c9"]
        assert fr.recorded == 10

    def test_configure_resize_keeps_newest(self):
        fr = FlightRecorder(capacity=8)
        for i in range(8):
            fr.record("query", f"c{i}")
        fr.configure(capacity=2)
        assert [e["name"] for e in fr.snapshot()] == ["c6", "c7"]
        assert fr.capacity == 2

    def test_configure_validates(self):
        fr = FlightRecorder()
        with pytest.raises(ValueError):
            fr.configure(capacity=0)
        with pytest.raises(ValueError):
            fr.configure(dump_keep=0)

    def test_disabled_recorder_still_records_direct_calls(self):
        # ``enabled`` gates the *hook sites*; direct record() is explicit.
        fr = FlightRecorder(capacity=4)
        fr.enabled = False
        assert fr.auto_dump("manual") is None  # but dumps are gated
        assert fr.dumps == fr.dumps.__class__(maxlen=8)


class TestDumps:
    def test_auto_dump_in_memory(self):
        fr = FlightRecorder(capacity=4)
        fr.record("error", "r1", 1, "ValueError()")
        fr.auto_dump("rule_error", "ValueError()")
        dumps = fr.snapshot_dumps()
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "rule_error"
        assert dumps[0]["error"] == "ValueError()"
        assert dumps[0]["entries"][0]["name"] == "r1"

    def test_auto_dump_to_disk(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        fr.configure(dump_dir=str(tmp_path))
        fr.record("txn", "abort", 7, "changes=3")
        path = fr.auto_dump("txn_aborted", "txn 7 rolled back")
        assert path is not None
        lines = [json.loads(line) for line in open(path)]
        assert lines[0]["reason"] == "txn_aborted"
        assert lines[1]["kind"] == "txn"
        assert lines[1]["value"] == 7

    def test_disk_dumps_pruned_to_keep(self, tmp_path):
        fr = FlightRecorder(capacity=2)
        fr.configure(dump_dir=str(tmp_path), dump_keep=2)
        for i in range(5):
            fr.record("error", f"r{i}")
            fr.auto_dump("manual")
        files = sorted(p.name for p in tmp_path.glob("flight-*.jsonl"))
        assert len(files) == 2
        assert files[-1].startswith("flight-0005")

    def test_on_demand_dump(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        fr.record("query", "Emp", 3)
        assert fr.dump()[0]["name"] == "Emp"
        path = str(tmp_path / "out.jsonl")
        assert fr.dump(path) == path
        assert json.loads(open(path).readline())["name"] == "Emp"

    def test_clear_resets_everything(self):
        fr = FlightRecorder(capacity=4)
        fr.record("query", "Emp")
        fr.auto_dump("manual")
        fr.clear()
        assert fr.depth() == 0
        assert fr.snapshot_dumps() == []
        assert fr.recorded == 0


class TestCollector:
    def test_metrics_snapshot_exposes_flight_gauges(self):
        flight_recorder.record("query", "Emp")
        snap = metrics.snapshot()
        assert snap["flight.depth"] == 1.0
        assert snap["flight.capacity"] == 512.0
        assert snap["flight.recorded"] == 1.0
        assert snap["flight.dumps"] == 0.0

    def test_metrics_reset_clears_the_ring(self):
        flight_recorder.record("query", "Emp")
        metrics.reset()
        assert flight_recorder.depth() == 0


class TestEngineHooks:
    def test_rule_firing_recorded(self):
        with Sentinel() as s:
            rule = s.create_rule(
                name="fr_rule", event="end Thing::poke()",
                action=lambda ctx: None,
            )
            thing = Thing()
            thing.subscribe(rule)
            thing.poke()
        kinds = [(e["kind"], e["name"], e["detail"])
                 for e in flight_recorder.snapshot()]
        assert ("firing", "fr_rule", "fired") in kinds

    def test_rejected_condition_recorded(self):
        with Sentinel() as s:
            rule = s.create_rule(
                name="fr_reject", event="end Thing::poke()",
                condition=lambda ctx: False, action=lambda ctx: None,
            )
            thing = Thing()
            thing.subscribe(rule)
            thing.poke()
        kinds = [(e["kind"], e["detail"])
                 for e in flight_recorder.snapshot()]
        assert ("firing", "rejected") in kinds

    def test_rule_error_records_and_dumps(self):
        with Sentinel() as s:
            rule = s.create_rule(
                name="fr_boom", event="end Thing::poke()",
                action=lambda ctx: 1 / 0,
            )
            thing = Thing()
            thing.subscribe(rule)
            with pytest.raises(ZeroDivisionError):
                thing.poke()
        errors = [e for e in flight_recorder.snapshot()
                  if e["kind"] == "error"]
        assert errors and "ZeroDivisionError" in errors[0]["detail"]
        dumps = flight_recorder.snapshot_dumps()
        assert dumps and dumps[-1]["reason"] == "rule_error"

    def test_isolate_policy_error_records_without_dump(self):
        with Sentinel(error_policy="isolate") as s:
            rule = s.create_rule(
                name="fr_soft", event="end Thing::poke()",
                action=lambda ctx: 1 / 0,
            )
            thing = Thing()
            thing.subscribe(rule)
            thing.poke()
        errors = [e for e in flight_recorder.snapshot()
                  if e["kind"] == "error"]
        assert errors
        assert flight_recorder.snapshot_dumps() == []

    def test_cascade_dumps(self):
        with Sentinel(max_cascade_depth=3) as s:
            rule = s.create_rule(
                name="fr_loop", event="end Thing::poke()",
                action=lambda ctx: ctx.source.poke(),
            )
            thing = Thing()
            thing.subscribe(rule)
            with pytest.raises(CascadeError):
                thing.poke()
        dumps = flight_recorder.snapshot_dumps()
        assert dumps and dumps[-1]["reason"] == "rule_cascade"

    def test_txn_commit_abort_and_abort_dump(self, tmp_path):
        from repro.oodb.database import Database
        from repro.oodb.schema import Persistent

        class Doc(Persistent):
            def __init__(self, n=0):
                super().__init__()
                self.n = n

        db = Database(str(tmp_path / "db"))
        try:
            with db.transaction():
                db.add(Doc(1))
            db.begin()
            db.add(Doc(2))
            db.abort()
        finally:
            db.close()
        entries = [(e["kind"], e["name"]) for e in flight_recorder.snapshot()]
        assert ("txn", "commit") in entries
        assert ("txn", "abort") in entries
        dumps = flight_recorder.snapshot_dumps()
        assert any(d["reason"] == "txn_aborted" for d in dumps)

    def test_query_recorded_with_access_path(self, tmp_path):
        from repro.oodb.database import Database
        from repro.oodb.schema import Persistent

        class Row(Persistent):
            def __init__(self, n=0):
                super().__init__()
                self.n = n

        db = Database(str(tmp_path / "db"))
        try:
            with db.transaction():
                db.add(Row(1))
            list(db.query(Row))
        finally:
            db.close()
        queries = [e for e in flight_recorder.snapshot()
                   if e["kind"] == "query"]
        assert queries and queries[-1]["name"] == "Row"
        assert queries[-1]["detail"] == "extent_scan"

    def test_disabled_hooks_record_nothing(self):
        flight_recorder.configure(enabled=False)
        with Sentinel() as s:
            rule = s.create_rule(
                name="fr_off", event="end Thing::poke()",
                action=lambda ctx: None,
            )
            thing = Thing()
            thing.subscribe(rule)
            thing.poke()
        assert flight_recorder.depth() == 0
