"""Unit tests for the metrics registry (counters, histograms, collectors)."""

from repro.obs import Counter, Histogram, MetricsRegistry, metrics
from repro.obs.metrics import pipeline_stats, reset_pipeline_stats


class TestCounter:
    def test_inc_and_reset(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_exact_aggregates(self):
        hist = Histogram("h")
        for value in (2.0, 8.0, 5.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.total == 15.0
        assert hist.min == 2.0
        assert hist.max == 8.0
        assert hist.mean == 5.0

    def test_percentiles_over_known_distribution(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.record(float(value))
        # Nearest-rank estimates land within one sample of the exact value.
        assert 50.0 <= hist.percentile(50) <= 51.0
        assert 95.0 <= hist.percentile(95) <= 96.0
        assert 99.0 <= hist.percentile(99) <= 100.0
        summary = hist.summary()
        assert summary["p50"] == hist.percentile(50)
        assert summary["p95"] == hist.percentile(95)
        assert summary["p99"] == hist.percentile(99)
        assert summary["count"] == 100

    def test_window_bounds_percentiles_but_not_count(self):
        hist = Histogram("h", window=10)
        for value in range(1, 101):
            hist.record(float(value))
        # Exact aggregates see all 100 samples...
        assert hist.count == 100
        assert hist.min == 1.0
        # ...percentiles only the last 10 (91..100).
        assert hist.percentile(0) == 91.0

    def test_empty_summary(self):
        assert Histogram("h").summary() == {"count": 0}
        assert Histogram("h").percentile(50) == 0.0

    def test_empty_window_contract_is_explicit(self):
        """count > 0 but every sample already fell out of the deque:
        percentiles are 0.0, never an IndexError."""
        hist = Histogram("h", window=4)
        for value in (1.0, 2.0, 3.0):
            hist.record(value)
        hist._window.clear()  # simulate the ring buffer draining
        assert hist.count == 3
        assert hist.percentile(50) == 0.0
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["p50"] == 0.0

    def test_bucket_counts_are_cumulative(self):
        hist = Histogram("h")
        hist.record(0.5)   # below the first bound -> le="1"
        hist.record(3.0)   # le="4.642"
        hist.record(5e8)   # above the last bound -> +Inf only
        buckets = hist.buckets()
        assert buckets["1"] == 1
        assert buckets["4.642"] == 2
        assert buckets["10000"] == 2
        assert buckets["+Inf"] == 3
        counts = list(buckets.values())
        assert counts == sorted(counts)

    def test_buckets_survive_window_eviction_and_reset(self):
        hist = Histogram("h", window=2)
        for _ in range(10):
            hist.record(3.0)
        # Window holds only 2 samples but buckets count all 10.
        assert hist.buckets()["+Inf"] == 10
        assert hist.summary()["buckets"]["+Inf"] == 10
        hist.reset()
        assert hist.buckets()["+Inf"] == 0
        assert "buckets" not in hist.summary()  # empty stays {"count": 0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_snapshot_flattens_everything(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("lat").record(7.0)
        external = {"widgets": 2}
        registry.register_collector("ext", lambda: dict(external))
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["lat"]["count"] == 1
        assert snap["ext.widgets"] == 2

    def test_reset_zeroes_instruments_and_collectors(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.histogram("lat").record(1.0)
        state = {"n": 5}
        registry.register_collector(
            "ext", lambda: dict(state), lambda: state.update(n=0)
        )
        registry.reset()
        snap = registry.snapshot()
        assert snap["hits"] == 0
        assert snap["lat"] == {"count": 0}
        assert snap["ext.n"] == 0

    def test_counters_view(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(2)
        assert registry.counters() == {"x": 2}


class TestPipelineStatsRehoming:
    # The repro.stats alias itself is covered by test_stats_alias.py;
    # everything here exercises the canonical repro.obs.metrics home.

    def test_reset_returns_the_shared_instance(self):
        pipeline_stats.group_commits += 3
        returned = reset_pipeline_stats()
        assert returned is pipeline_stats
        assert pipeline_stats.group_commits == 0

    def test_registry_snapshot_includes_pipeline_counters(self):
        reset_pipeline_stats()
        pipeline_stats.group_commits += 2
        pipeline_stats.wal_syncs += 1
        snap = metrics.snapshot()
        assert snap["pipeline.group_commits"] == 2
        assert snap["pipeline.wal_syncs"] == 1

    def test_registry_reset_clears_pipeline_counters(self):
        pipeline_stats.consumer_cache_hits += 9
        metrics.reset()
        assert pipeline_stats.consumer_cache_hits == 0


class TestConcurrentBumps:
    """The single-writer contract is retired: bumps from N threads must

    not lose counts.  (Satellite of the concurrent-engine PR — these
    exact interleavings are what the old contract declared undefined.)"""

    def test_counter_concurrent_incs_lose_nothing(self):
        import threading

        counter = Counter("hammered")
        n_threads, per_thread = 8, 5000
        start = threading.Barrier(n_threads)

        def bump():
            start.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread

    def test_histogram_concurrent_records_lose_nothing(self):
        import threading

        hist = Histogram("hammered_h", window=256)
        n_threads, per_thread = 6, 2000
        start = threading.Barrier(n_threads)

        def bump(base):
            start.wait()
            for i in range(per_thread):
                hist.record(float(base + i))

        threads = [
            threading.Thread(target=bump, args=(t * per_thread,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        summary = hist.summary()
        assert summary["count"] == n_threads * per_thread
        assert summary["min"] == 0.0
        assert summary["max"] == float(n_threads * per_thread - 1)

    def test_registry_get_or_create_race_yields_one_instrument(self):
        import threading

        registry = MetricsRegistry()
        seen = []
        start = threading.Barrier(8)

        def grab():
            start.wait()
            seen.append(registry.counter("contended"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
        for counter in set(seen):
            counter.inc()
        assert registry.counter("contended").value == 1
