"""Trace sampling: 1-in-N chains, complete chains, errors never dropped."""

import pytest

from repro.core.interface import event_method
from repro.core.reactive import Reactive
from repro.core.system import Sentinel
from repro.obs import metrics, tracer


class TestChainSampling:
    def test_sample_interval_keeps_one_chain_in_n(self):
        tracer.enable(sample=4)
        for i in range(8):
            with tracer.span("method", f"call{i}"):
                pass
        spans = tracer.spans()
        # Chains 4 and 8 are kept (counter hits a multiple of 4).
        assert [s.name for s in spans] == ["call3", "call7"]

    def test_sampled_chain_is_recorded_complete(self):
        tracer.enable(sample=2)
        for i in range(2):
            with tracer.span("method", f"m{i}"):
                with tracer.span("occurrence", f"o{i}"):
                    tracer.point("signal", f"s{i}")
        names = [s.name for s in tracer.spans()]
        # The skipped chain (m0) contributes nothing; the kept chain (m1)
        # is complete: method, occurrence, and the nested point.
        assert names == ["s1", "o1", "m1"]

    def test_skipped_chain_contributes_nothing(self):
        tracer.enable(sample=1000)
        with tracer.span("method", "m"):
            with tracer.span("rule", "r"):
                tracer.point("signal", "s")
        assert tracer.spans() == []
        assert tracer._skip_depth == 0
        assert not tracer._stack

    def test_sample_one_records_everything(self):
        tracer.enable(sample=1)
        for i in range(5):
            with tracer.span("method", f"m{i}"):
                pass
        assert len(tracer.spans()) == 5

    def test_sample_must_be_positive(self):
        with pytest.raises(ValueError):
            tracer.enable(sample=0)

    def test_top_level_points_ignore_sampling(self):
        tracer.enable(sample=1000)
        tracer.point("txn", "begin:1")
        tracer.point("txn", "abort:1")
        assert [s.name for s in tracer.spans()] == ["begin:1", "abort:1"]


class TestErrorsAlwaysTraced:
    def test_error_span_in_skipped_chain_is_promoted(self):
        tracer.enable(sample=1000)
        span = tracer.begin("method", "m")
        inner = tracer.begin("rule", "failing")
        tracer.end(inner, error="ValueError")
        tracer.end(span)
        [recorded] = tracer.spans()
        assert recorded.name == "failing"
        assert recorded.attrs["error"] == "ValueError"
        assert recorded.attrs["sampled"] is False
        assert metrics.counter("trace.errors_promoted").value == 1

    def test_error_point_in_skipped_chain_is_recorded(self):
        tracer.enable(sample=1000)
        with tracer.span("method", "m"):
            tracer.point("outcome", "boom", error="RuntimeError")
        [recorded] = tracer.spans()
        assert recorded.name == "boom"

    def test_non_error_spans_of_skipped_chain_stay_dropped(self):
        tracer.enable(sample=1000)
        with tracer.span("method", "m"):
            with tracer.span("rule", "fine"):
                pass
        assert tracer.spans() == []


class _Stock(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.price = 0.0

    @event_method
    def set_price(self, price: float) -> None:
        self.price = price


class TestPipelineSampling:
    def test_sampled_pipeline_records_one_chain_in_n(self):
        fired = []
        with Sentinel(adopt_class_rules=False) as sentinel:
            stock = _Stock()
            sentinel.monitor(
                [stock],
                on="end _Stock::set_price(float price)",
                action=lambda ctx: fired.append(ctx.occurrence.seq),
                name="watch",
            )
            tracer.enable(sample=4)
            for i in range(8):
                stock.set_price(float(i))
        assert len(fired) == 8  # sampling never affects rule execution
        rule_spans = tracer.find("rule")
        assert len(rule_spans) == 2  # chains 4 and 8
        assert tracer._skip_depth == 0

    def test_unsampled_pipeline_traces_every_chain(self):
        with Sentinel(adopt_class_rules=False) as sentinel:
            stock = _Stock()
            sentinel.monitor(
                [stock],
                on="end _Stock::set_price(float price)",
                action=lambda ctx: None,
                name="watch",
            )
            tracer.enable()
            for i in range(3):
                stock.set_price(float(i))
        assert len(tracer.find("rule")) == 3
