"""SLO declarations and burn-rate evaluation over a telemetry store."""

import pytest

from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    SLO,
    SLOStatus,
    Window,
    WindowStatus,
    evaluate_slo,
    sum_increase,
)
from repro.obs.tsdb import TimeSeriesStore

T0 = 1_700_000_000.0


@pytest.fixture
def store(tmp_path):
    s = TimeSeriesStore(str(tmp_path / "tsdb"))
    yield s
    s.close()


def _scrape(store, ts, errors, total, p99=100.0):
    store.append(
        {
            "rule_firings{rule=a,outcome=error}": float(errors),
            "rule_firings{rule=a,outcome=fired}": float(total - errors),
            "txn_commit_us.p99": p99,
        },
        ts=ts,
    )


class TestDeclarations:
    def test_window_validation(self):
        with pytest.raises(ValueError, match="seconds"):
            Window(0.0)
        with pytest.raises(ValueError, match="max_burn"):
            Window(60.0, max_burn=-1.0)

    def test_default_windows_are_the_sre_pair(self):
        assert [(w.seconds, w.max_burn) for w in DEFAULT_BURN_WINDOWS] == [
            (60.0, 14.4),
            (300.0, 6.0),
        ]

    def test_slo_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLO(name="x", kind="vibes", target=1.0)
        with pytest.raises(ValueError, match="target"):
            SLO(name="x", kind="threshold", target=0.0)
        with pytest.raises(ValueError, match="window"):
            SLO(name="x", kind="threshold", target=1.0, windows=())

    def test_factories_fill_the_right_fields(self):
        err = SLO.error_rate("e", numerator="n", denominator="d",
                             target=0.01)
        assert (err.kind, err.numerator, err.denominator) == (
            "error_rate", "n", "d",
        )
        lat = SLO.latency("l", series="txn_commit_us.p99", target_us=500.0)
        assert (lat.kind, lat.series, lat.fn, lat.target) == (
            "threshold", "txn_commit_us.p99", "avg", 500.0,
        )
        thr = SLO.threshold("t", series="sched.pending", target=100.0,
                            fn="max")
        assert (thr.kind, thr.fn) == ("threshold", "max")


class TestSumIncrease:
    def test_exact_name_no_pattern_expansion(self, store):
        store.append({"c": 1.0}, ts=T0)
        store.append({"c": 4.0}, ts=T0 + 10)
        assert sum_increase(store, "c", 60.0, T0 + 10) == 3.0

    def test_fnmatch_pattern_aggregates_labeled_family(self, store):
        _scrape(store, T0, errors=0, total=10)
        _scrape(store, T0 + 10, errors=2, total=30)
        total = sum_increase(store, "rule_firings{*", 60.0, T0 + 10)
        assert total == 20.0  # errors +2, fired +18
        errors = sum_increase(
            store, "rule_firings{*outcome=error}", 60.0, T0 + 10
        )
        assert errors == 2.0

    def test_none_when_no_series_has_two_samples(self, store):
        assert sum_increase(store, "missing", 60.0, T0) is None
        store.append({"once": 1.0}, ts=T0)
        assert sum_increase(store, "once", 60.0, T0) is None


class TestEvaluate:
    def test_no_data_is_not_a_breach(self, store):
        slo = SLO.error_rate("e", numerator="x", denominator="y")
        status = evaluate_slo(slo, store, T0)
        assert not status.breached
        assert not status.has_data
        assert status.value == 0.0
        assert status.worst_burn == 0.0
        assert status.windows_text == "60s:-,300s:-"

    def test_zero_denominator_is_no_data(self, store):
        store.append({"d": 5.0}, ts=T0)
        store.append({"d": 5.0}, ts=T0 + 10)  # increase == 0: no traffic
        slo = SLO.error_rate("e", numerator="n", denominator="d")
        status = evaluate_slo(slo, store, T0 + 10)
        assert not status.has_data
        assert not status.breached

    def test_zero_errors_is_data_with_zero_burn(self, store):
        _scrape(store, T0, errors=0, total=10)
        _scrape(store, T0 + 10, errors=0, total=20)
        slo = SLO.error_rate(
            "e",
            numerator="rule_firings{*outcome=error}",
            denominator="rule_firings{*",
        )
        status = evaluate_slo(slo, store, T0 + 10)
        assert status.has_data
        assert status.value == 0.0
        assert not status.breached

    def test_breach_requires_every_window_over(self, store):
        # Samples only span 30s: the 60s window sees the burn, a 600s
        # window sees the same points but a diluted event count is still
        # over; use a second window whose max_burn is higher instead.
        _scrape(store, T0, errors=0, total=10)
        _scrape(store, T0 + 30, errors=9, total=20)  # 90% error ratio
        slo = SLO.error_rate(
            "e",
            numerator="rule_firings{*outcome=error}",
            denominator="rule_firings{*",
            target=0.1,
            windows=(Window(60.0, 1.0), Window(300.0, 100.0)),
        )
        status = evaluate_slo(slo, store, T0 + 30)
        fast, slow = status.windows
        assert fast.over  # burn 9x > 1
        assert not slow.over  # burn 9x < 100
        assert not status.breached  # ALL windows must be over

    def test_breach_when_all_windows_over(self, store):
        _scrape(store, T0, errors=0, total=10)
        _scrape(store, T0 + 30, errors=9, total=20)
        slo = SLO.error_rate(
            "e",
            numerator="rule_firings{*outcome=error}",
            denominator="rule_firings{*",
            target=0.1,
            windows=(Window(60.0, 1.0), Window(300.0, 2.0)),
        )
        status = evaluate_slo(slo, store, T0 + 30)
        assert status.breached
        assert status.value == pytest.approx(0.9)
        assert status.worst_burn == pytest.approx(9.0)
        assert status.windows_text == "60s:9.0x,300s:9.0x"

    def test_threshold_slo_uses_aggregate(self, store):
        _scrape(store, T0, errors=0, total=10, p99=400.0)
        _scrape(store, T0 + 30, errors=0, total=20, p99=800.0)
        slo = SLO.latency(
            "commit-p99",
            series="txn_commit_us.p99",
            target_us=500.0,
            windows=(Window(60.0, 1.0),),
        )
        status = evaluate_slo(slo, store, T0 + 30)
        assert status.value == pytest.approx(600.0)  # avg(400, 800)
        assert status.breached  # burn 1.2x > 1.0

    def test_threshold_max_fn(self, store):
        _scrape(store, T0, errors=0, total=10, p99=400.0)
        _scrape(store, T0 + 30, errors=0, total=20, p99=800.0)
        slo = SLO.threshold(
            "worst-p99",
            series="txn_commit_us.p99",
            target=1000.0,
            fn="max",
            windows=(Window(60.0, 1.0),),
        )
        status = evaluate_slo(slo, store, T0 + 30)
        assert status.value == 800.0
        assert not status.breached  # 0.8x <= 1.0

    def test_as_dict_is_json_shaped(self, store):
        _scrape(store, T0, errors=0, total=10)
        _scrape(store, T0 + 30, errors=1, total=20)
        slo = SLO.error_rate(
            "e",
            numerator="rule_firings{*outcome=error}",
            denominator="rule_firings{*",
        )
        payload = evaluate_slo(slo, store, T0 + 30).as_dict()
        assert payload["name"] == "e"
        assert payload["kind"] == "error_rate"
        assert isinstance(payload["breached"], bool)
        assert len(payload["windows"]) == 2
        assert set(payload["windows"][0]) == {
            "seconds", "max_burn", "value", "burn", "over",
        }


class TestStatusEdges:
    def test_window_status_over_handles_none(self):
        assert not WindowStatus(60.0, 1.0, None, None).over
        assert WindowStatus(60.0, 1.0, 2.0, 2.0).over
        assert not WindowStatus(60.0, 1.0, 1.0, 1.0).over  # strict >

    def test_empty_status_never_breaches(self):
        slo = SLO.threshold("t", series="s", target=1.0)
        status = SLOStatus(slo=slo, at=T0, windows=[])
        assert not status.breached
        assert status.windows_text == ""
