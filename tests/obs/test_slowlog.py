"""The slow-op log: thresholds, rotation, engine hooks, sysmon signals."""

import json
import time

import pytest

from repro.core.reactive import Reactive
from repro.core.system import Sentinel
from repro.obs.audit import read_entries, tail_entries
from repro.obs.metrics import metrics
from repro.obs.slowlog import DEFAULT_THRESHOLDS, SlowOpLog, slow_op_log


class Thing(Reactive):
    __event_interface__ = {"poke": "end"}

    def poke(self):
        return "poked"


def _entries(path):
    return [json.loads(line) for line in open(path)]


class TestLifecycle:
    def test_closed_by_default(self):
        log = SlowOpLog()
        assert not log.enabled
        log.record("query", 1.0, 0.0)  # no handle: silently ignored

    def test_open_sets_thresholds(self, tmp_path):
        log = SlowOpLog()
        log.open(str(tmp_path / "s.jsonl"), slow_query_us=123.0)
        try:
            assert log.enabled
            assert log.slow_query_us == 123.0
            assert log.slow_rule_us == DEFAULT_THRESHOLDS["slow_rule_us"]
        finally:
            log.close()
        assert not log.enabled

    def test_unknown_threshold_rejected(self, tmp_path):
        log = SlowOpLog()
        with pytest.raises(ValueError, match="unknown slow-op threshold"):
            log.open(str(tmp_path / "s.jsonl"), slow_commit_us=1.0)

    def test_open_validates_rotation_params(self, tmp_path):
        log = SlowOpLog()
        with pytest.raises(ValueError):
            log.open(str(tmp_path / "s.jsonl"), max_bytes=0)
        with pytest.raises(ValueError):
            log.open(str(tmp_path / "s.jsonl"), keep=0)

    def test_reset_thresholds(self):
        log = SlowOpLog()
        log.configure(slow_query_us=1.0)
        log.reset_thresholds()
        assert log.slow_query_us == DEFAULT_THRESHOLDS["slow_query_us"]


class TestRecord:
    def test_entry_shape_and_counter(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = SlowOpLog()
        log.open(path)
        log.record("fsync", 31234.5678, 20000.0, path="/x/wal.log")
        log.close()
        (entry,) = _entries(path)
        assert entry["kind"] == "fsync"
        assert entry["duration_us"] == 31234.6
        assert entry["threshold_us"] == 20000.0
        assert entry["path"] == "/x/wal.log"
        assert entry["ts"] > 0
        assert metrics.snapshot()["slow_ops_total{kind=fsync}"] == 1

    def test_rotation_and_audit_readers(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        log = SlowOpLog()
        log.open(path, max_bytes=200, keep=2)
        for i in range(20):
            log.record("query", 100.0 + i, 50.0, seq=i)
        log.close()
        # The audit-log readers work on slow-op files unchanged.
        everything = list(read_entries(path, include_rotated=True))
        assert [e["seq"] for e in everything] == sorted(
            e["seq"] for e in everything
        )
        newest = tail_entries(path, 5)
        assert [e["seq"] for e in newest] == [e["seq"]
                                              for e in everything[-5:]]

    def test_signal_emission(self, tmp_path):
        with Sentinel() as s:
            monitor = s.system_monitor()
            s.enable_slow_log(str(tmp_path / "s.jsonl"))
            try:
                slow_op_log.record(
                    "query", 99.0, 1.0,
                    signal="query_slow",
                    signal_payload={
                        "class_name": "Emp", "access_path": "extent_scan",
                        "micros": 99.0, "threshold_us": 1.0,
                    },
                )
            finally:
                s.disable_slow_log()
            assert monitor.slow_queries == 1
            monitor.detach()


class TestEngineHooks:
    def test_slow_rule_action_logged_with_phase(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with Sentinel() as s:
            s.enable_slow_log(path, slow_rule_us=0.0)
            try:
                rule = s.create_rule(
                    name="slow_action", event="end Thing::poke()",
                    condition=lambda ctx: True,
                    action=lambda ctx: time.sleep(0.001),
                )
                thing = Thing()
                thing.subscribe(rule)
                thing.poke()
            finally:
                s.disable_slow_log()
        phases = {(e["rule"], e["phase"]) for e in _entries(path)}
        assert ("slow_action", "condition") in phases
        assert ("slow_action", "action") in phases

    def test_erroring_slow_action_still_logged(self, tmp_path):
        path = str(tmp_path / "s.jsonl")

        def boom(ctx):
            time.sleep(0.001)
            raise ValueError("late failure")

        with Sentinel() as s:
            s.enable_slow_log(path, slow_rule_us=0.0)
            try:
                rule = s.create_rule(
                    name="slow_boom", event="end Thing::poke()", action=boom,
                )
                thing = Thing()
                thing.subscribe(rule)
                with pytest.raises(ValueError):
                    thing.poke()
            finally:
                s.disable_slow_log()
        actions = [e for e in _entries(path) if e["phase"] == "action"]
        assert actions and actions[0]["rule"] == "slow_boom"

    def test_traced_path_also_logs_slow_phases(self, tmp_path):
        from repro.obs import tracer

        path = str(tmp_path / "s.jsonl")
        tracer.enable()
        with Sentinel() as s:
            s.enable_slow_log(path, slow_rule_us=0.0)
            try:
                rule = s.create_rule(
                    name="slow_traced", event="end Thing::poke()",
                    action=lambda ctx: time.sleep(0.001),
                )
                thing = Thing()
                thing.subscribe(rule)
                thing.poke()
            finally:
                s.disable_slow_log()
        assert any(e["phase"] == "action" for e in _entries(path))

    def test_fast_rule_not_logged(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with Sentinel() as s:
            s.enable_slow_log(path)  # default thresholds: generous
            try:
                rule = s.create_rule(
                    name="fast_rule", event="end Thing::poke()",
                    action=lambda ctx: None,
                )
                thing = Thing()
                thing.subscribe(rule)
                thing.poke()
            finally:
                s.disable_slow_log()
        assert _entries(path) == []

    def test_slow_query_logged_with_plan(self, tmp_path):
        from repro.oodb.database import Database
        from repro.oodb.schema import Persistent

        class Row(Persistent):
            def __init__(self, n=0):
                super().__init__()
                self.n = n

        path = str(tmp_path / "s.jsonl")
        db = Database(str(tmp_path / "db"))
        try:
            with db.transaction():
                for i in range(10):
                    db.add(Row(i))
            slow_op_log.open(path, slow_query_us=0.0)
            try:
                rows = list(db.query(Row).where_op("n", ">", 4))
            finally:
                slow_op_log.close()
                slow_op_log.reset_thresholds()
            assert len(rows) == 5
        finally:
            db.close()
        queries = [e for e in _entries(path) if e["kind"] == "query"]
        assert queries
        entry = queries[-1]
        assert entry["class"] == "Row"
        assert entry["access_path"] == "extent_scan"
        assert entry["rows"] == 5
        assert entry["plan"]["plan"]["class_name"] == "Row"
        assert entry["plan"]["actual"]["returned"] == 5

    def test_long_txn_logged(self, tmp_path):
        from repro.oodb.database import Database
        from repro.oodb.schema import Persistent

        class Row(Persistent):
            def __init__(self, n=0):
                super().__init__()
                self.n = n

        path = str(tmp_path / "s.jsonl")
        db = Database(str(tmp_path / "db"))
        try:
            slow_op_log.open(path, long_txn_us=0.0)
            try:
                with db.transaction():
                    db.add(Row(1))
            finally:
                slow_op_log.close()
                slow_op_log.reset_thresholds()
        finally:
            db.close()
        txns = [e for e in _entries(path) if e["kind"] == "txn"]
        assert txns and txns[0]["status"] == "committed"
        assert txns[0]["changes"] >= 1

    def test_slow_fsync_logged(self, tmp_path):
        from repro.oodb.database import Database
        from repro.oodb.schema import Persistent

        class Row(Persistent):
            def __init__(self, n=0):
                super().__init__()
                self.n = n

        path = str(tmp_path / "s.jsonl")
        db = Database(str(tmp_path / "db"))
        try:
            slow_op_log.open(path, slow_fsync_us=0.0)
            try:
                with db.transaction():
                    db.add(Row(1))
            finally:
                slow_op_log.close()
                slow_op_log.reset_thresholds()
        finally:
            db.close()
        fsyncs = [e for e in _entries(path) if e["kind"] == "fsync"]
        assert fsyncs and fsyncs[0]["path"].endswith("wal.log")
