"""The deprecated ``repro.stats`` alias: warns, re-exports unchanged."""

import importlib
import sys
import warnings


def _fresh_import():
    sys.modules.pop("repro.stats", None)
    return importlib.import_module("repro.stats")


class TestStatsAlias:
    def test_import_emits_deprecation_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _fresh_import()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.obs.metrics" in str(deprecations[0].message)

    def test_reexports_are_the_same_objects(self):
        obs_metrics = importlib.import_module("repro.obs.metrics")

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            stats = _fresh_import()
        assert stats.PipelineStats is obs_metrics.PipelineStats
        assert stats.pipeline_stats is obs_metrics.pipeline_stats
        assert stats.reset_pipeline_stats is obs_metrics.reset_pipeline_stats
        assert stats.__all__ == [
            "PipelineStats", "pipeline_stats", "reset_pipeline_stats",
        ]

    def test_alias_counters_stay_live(self):
        """Bumps through the alias land in the shared instance."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            stats = _fresh_import()
        from repro.obs.metrics import pipeline_stats

        stats.pipeline_stats.wal_syncs += 1
        assert pipeline_stats.wal_syncs >= 1
        stats.reset_pipeline_stats()
        assert pipeline_stats.wal_syncs == 0
