"""Self-monitoring: engine health signals as first-class ECA events."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.events.primitive import Primitive
from repro.core.interface import event_method
from repro.core.reactive import Reactive
from repro.core.system import Sentinel
from repro.obs import engine_signals, metrics
from repro.obs.audit import read_entries
from repro.obs.sysmon import SystemMonitor, occurrence_from_sysmon


class _Stock(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.price = 0.0

    @event_method
    def set_price(self, price: float) -> None:
        self.price = price

    @event_method
    def audit(self) -> None:
        pass


@pytest.fixture
def sentinel():
    with Sentinel(error_policy="isolate", adopt_class_rules=False) as s:
        yield s
        s.close()


class TestMonitorEvents:
    def test_rule_fired_raises_a_monitorable_event(self, sentinel):
        monitor = sentinel.system_monitor()
        stock = _Stock()
        sentinel.monitor(
            [stock],
            on="end _Stock::set_price(float price)",
            action=lambda ctx: None,
            name="domain",
        )
        seen = []
        sentinel.monitor(
            [monitor],
            on="end SystemMonitor::rule_fired(rule, seq, coupling, latency_us)",
            action=lambda ctx: seen.append(ctx.occurrence.parameters()),
            name="meta",
        )
        stock.set_price(10.0)
        assert monitor.fired == 1
        [params] = seen
        assert params["rule"] == "domain"
        assert params["coupling"] == "immediate"
        assert params["latency_us"] >= 0.0

    def test_condition_rejected_event(self, sentinel):
        monitor = sentinel.system_monitor()
        stock = _Stock()
        sentinel.monitor(
            [stock],
            on="end _Stock::set_price(float price)",
            condition=lambda ctx: False,
            action=lambda ctx: None,
            name="picky",
        )
        seen = []
        sentinel.monitor(
            [monitor],
            on="end SystemMonitor::condition_rejected(rule, seq, coupling)",
            action=lambda ctx: seen.append(ctx.occurrence.parameters()["rule"]),
            name="meta",
        )
        stock.set_price(1.0)
        assert seen == ["picky"]
        assert monitor.rejected == 1

    def test_txn_aborted_event(self, sentinel, tmp_path):
        with Sentinel(path=str(tmp_path / "db")) as s:
            monitor = s.system_monitor()
            seen = []
            s.monitor(
                [monitor],
                on="end SystemMonitor::txn_aborted(txn_id, changes)",
                action=lambda ctx: seen.append(ctx.occurrence.parameters()),
                name="abort-watch",
            )
            txn = s.db.txn_manager.begin()
            s.db.txn_manager.rollback(txn)
            assert monitor.txn_aborts == 1
            [params] = seen
            assert params["txn_id"] == txn.id
            s.close()

    def test_scheduler_depth_exceeded_event(self, sentinel):
        monitor = sentinel.system_monitor(depth_threshold=2)
        stock = _Stock()
        sentinel.monitor(
            [stock],
            on="end _Stock::set_price(float price)",
            action=lambda ctx: stock.audit(),
            name="cascade-1",
        )
        sentinel.monitor(
            [stock],
            on="end _Stock::audit()",
            action=lambda ctx: None,
            name="cascade-2",
        )
        stock.set_price(5.0)  # cascade-2 runs at depth 2 == threshold
        assert monitor.depth_alerts == 1

    def test_wal_fsync_slow_event(self, tmp_path):
        with Sentinel(path=str(tmp_path / "db")) as s:
            monitor = s.system_monitor(fsync_slow_us=0.0)  # everything slow
            with s.transaction():
                s.db.add(_Stock())
            assert monitor.slow_fsyncs >= 1
            s.close()

    def test_counters_published_while_attached(self, sentinel):
        monitor = sentinel.system_monitor()
        assert metrics.snapshot()["sysmon.rule_fired"] == 0
        monitor.detach()
        assert "sysmon.rule_fired" not in metrics.snapshot()
        assert not engine_signals.active


class TestReentrancyGuards:
    def test_sysmon_rule_firing_does_not_emit_sysmon_events(self, sentinel):
        monitor = sentinel.system_monitor()
        stock = _Stock()
        sentinel.monitor(
            [stock],
            on="end _Stock::set_price(float price)",
            action=lambda ctx: None,
            name="domain",
        )
        meta_fired = []
        sentinel.monitor(
            [monitor],
            on="end SystemMonitor::rule_fired(rule, seq, coupling, latency_us)",
            action=lambda ctx: meta_fired.append(1),
            name="meta",
        )
        stock.set_price(1.0)
        # The domain firing raised one rule_fired event; the meta rule's
        # own firing was suppressed — no recursion, one delivery.
        assert meta_fired == [1]
        assert monitor.fired == 1
        assert engine_signals.suppression_depth == 0

    def test_receive_is_not_reentrant(self, sentinel):
        monitor = sentinel.system_monitor()
        object.__setattr__(monitor, "_emitting", True)
        monitor._receive("rule_fired", {
            "rule": "r", "seq": 1, "coupling": "immediate", "latency_us": 0.0,
        })
        assert monitor.dropped_reentrant == 1
        assert monitor.fired == 0
        object.__setattr__(monitor, "_emitting", False)

    def test_occurrence_from_sysmon_detects_constituents(self, sentinel):
        monitor = sentinel.system_monitor()
        captured = []
        sentinel.monitor(
            [monitor],
            on="end SystemMonitor::rule_error(rule, seq, coupling, error)",
            action=lambda ctx: captured.append(ctx.occurrence),
            name="meta",
        )
        stock = _Stock()
        sentinel.monitor(
            [stock],
            on="end _Stock::set_price(float price)",
            action=lambda ctx: 1 / 0,
            name="broken",
        )
        stock.set_price(1.0)
        [occurrence] = captured
        assert occurrence_from_sysmon(occurrence)


class TestEndToEnd:
    def test_rule_error_guard_disables_rule_audit_and_metrics(
        self, sentinel, tmp_path
    ):
        """The acceptance scenario: a rule on the sysmon ``rule_error``
        event disables the offending rule, and the guard's firing shows
        up in both the audit trail and the ``/metrics`` output."""
        audit_path = str(tmp_path / "audit.jsonl")
        sentinel.enable_audit(audit_path)
        monitor = sentinel.system_monitor()

        stock = _Stock()
        flaky = sentinel.monitor(
            [stock],
            on="end _Stock::set_price(float price)",
            action=lambda ctx: 1 / 0,
            name="flaky",
        )
        sentinel.monitor(
            [monitor],
            on="end SystemMonitor::rule_error(rule, seq, coupling, error)",
            action=lambda ctx: sentinel.rules.get(
                ctx.occurrence.parameters()["rule"]
            ).disable(),
            name="guard",
        )

        stock.set_price(1.0)
        assert not flaky.enabled
        stock.set_price(2.0)  # disabled: no second error
        assert monitor.errors == 1

        entries = list(read_entries(audit_path))
        outcomes = [(e["rule"], e["outcome"]) for e in entries]
        assert ("flaky", "error") in outcomes
        assert ("guard", "fired") in outcomes

        server = sentinel.serve_metrics()
        body = urllib.request.urlopen(server.url + "/metrics").read().decode()
        assert 'rule_firings_total{outcome="fired",rule="guard"} 1' in body
        assert 'rule_firings_total{outcome="error",rule="flaky"} 1' in body

    def test_sequence_event_over_rule_errors(self, sentinel):
        """Composite (Sequence) events work over sysmon primitives: the
        guard only trips on the *second* error."""
        monitor = sentinel.system_monitor()
        stock = _Stock()
        flaky = sentinel.monitor(
            [stock],
            on="end _Stock::set_price(float price)",
            action=lambda ctx: 1 / 0,
            name="flaky",
        )
        err_a = Primitive("end SystemMonitor::rule_error(rule, seq, coupling, error)")
        err_b = Primitive("end SystemMonitor::rule_error(rule, seq, coupling, error)")
        sentinel.monitor(
            [monitor],
            on=err_a >> err_b,
            action=lambda ctx: sentinel.rules.get(
                ctx.occurrence.parameters()["rule"]
            ).disable(),
            name="two-strikes",
        )
        stock.set_price(1.0)
        assert flaky.enabled  # one strike: sequence incomplete
        stock.set_price(2.0)
        assert not flaky.enabled  # second strike trips the guard
        assert monitor.errors == 2


class TestStandaloneAttach:
    def test_attach_detach_manage_hub_state(self):
        monitor = SystemMonitor()
        assert not engine_signals.active
        monitor.attach(depth_threshold=5, fsync_slow_us=123.0)
        assert engine_signals.active
        assert engine_signals.depth_threshold == 5
        assert engine_signals.fsync_slow_us == 123.0
        monitor.detach()
        assert not engine_signals.active

    def test_unknown_signal_kind_is_ignored(self):
        monitor = SystemMonitor().attach()
        engine_signals.emit("no_such_kind", x=1)
        monitor.detach()

    def test_monitor_counts_serialize(self):
        monitor = SystemMonitor()
        assert json.dumps(monitor._counts())  # plain ints, JSON-safe


class TestWorkerPoolSaturation:
    """Satellite e2e: pool breach -> sysmon signal -> ECA rule + /healthz."""

    def test_breach_fires_eca_rule_and_degrades_healthz(self, tmp_path):
        import threading

        from repro.oodb import Database

        db = Database(str(tmp_path / "db"), locking=True)
        system = Sentinel(error_policy="isolate", adopt_class_rules=False, db=db)
        with system:
            pool = system.enable_worker_pool(max_workers=1, queue_limit=1)
            monitor = system.system_monitor()
            breaches = []
            system.monitor(
                [monitor],
                on=(
                    "end SystemMonitor::worker_pool_saturated"
                    "(backlog, queue_limit, rule)"
                ),
                action=lambda ctx: breaches.append(ctx.occurrence.parameters()),
                name="pool-guard",
            )

            gate = threading.Event()
            blocker = system.create_rule(
                "blocker", "end _Stock::audit()",
                action=lambda ctx: gate.wait(10.0),
                coupling="decoupled",
            )
            stock = _Stock()
            stock.subscribe(blocker)

            try:
                with db.transaction():
                    stock.audit()   # occupies the single pool slot
                deadline = time.time() + 5.0
                while pool.backlog() < 1 and time.time() < deadline:
                    time.sleep(0.01)
                assert pool.backlog() == 1

                # /healthz flags the saturated pool while the slot is held.
                server = system.serve_metrics()
                try:
                    urllib.request.urlopen(server.url + "/healthz")
                    raise AssertionError("expected 503 while saturated")
                except urllib.error.HTTPError as err:
                    body = json.load(err)
                    assert err.code == 503
                assert body["status"] == "degraded"
                assert not body["checks"]["worker_pool"]["ok"]
                assert "backlog 1/1" in body["checks"]["worker_pool"]["detail"]

                # A second decoupled firing cannot get a slot: the engine
                # emits worker_pool_saturated and the ECA rule sees it.
                with db.transaction():
                    stock.audit()
                assert monitor.pool_saturations == 1
                assert len(breaches) == 1
                assert breaches[0]["rule"] == "blocker"
                assert breaches[0]["queue_limit"] == 1
            finally:
                gate.set()
            assert system.drain_decoupled(timeout=10.0) is True

            # Healthy again once the backlog drains.
            response = urllib.request.urlopen(server.url + "/healthz")
            report = json.load(response)
            assert report["checks"]["worker_pool"]["ok"]
        system.close()
