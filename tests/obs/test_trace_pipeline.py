"""End-to-end tracing through the event→rule pipeline and the OODB.

These tests pin the tentpole acceptance behaviour: with tracing enabled,
a salary-check rule firing produces one *connected* span chain — method
invocation → occurrence → detection → condition → action — and the
coupling mode decides where the rule's span attaches (immediate under the
occurrence, deferred under the committing transaction, detached outside
it).
"""

import pytest

from repro.core import Coupling, Reactive, event_method
from repro.obs import Span, tracer
from repro.tools.trace import explain_rule, load_spans, render_tree


class TracedEmployee(Reactive):
    def __init__(self, name: str, salary: float):
        super().__init__()
        self.name = name
        self.salary = salary

    @event_method
    def set_salary(self, salary: float):
        self.salary = salary


SET_SALARY = "end TracedEmployee::set_salary(float salary)"


def _by_id(spans: list[Span]) -> dict[int, Span]:
    return {span.span_id: span for span in spans}


def _ancestors(span: Span, spans: list[Span]) -> list[Span]:
    index = _by_id(spans)
    chain = []
    current = span
    while current.parent_id is not None:
        current = index[current.parent_id]
        chain.append(current)
    return chain


def _one(spans: list[Span], kind: str, **attrs) -> Span:
    matches = [
        s
        for s in spans
        if s.kind == kind and all(s.attrs.get(k) == v for k, v in attrs.items())
    ]
    assert len(matches) == 1, f"expected one {kind} span, got {matches}"
    return matches[0]


class TestImmediateChain:
    def test_salary_check_produces_connected_chain(self, sentinel, tmp_path):
        fred = TracedEmployee("fred", 100.0)
        sentinel.monitor(
            [fred],
            on=SET_SALARY,
            condition=lambda ctx: ctx.param("salary") > 150,
            action=lambda ctx: None,
            name="SalaryCheck",
        )
        tracer.enable()
        fred.set_salary(200.0)
        tracer.disable()

        spans = tracer.spans()
        method = _one(spans, "method")
        occurrence = _one(spans, "occurrence")
        signal = _one(spans, "signal")
        rule = _one(spans, "rule", rule="SalaryCheck")
        condition = _one(spans, "condition")
        action = _one(spans, "action")
        outcome = _one(spans, "outcome")

        # One connected chain, parent by parent.
        assert occurrence.parent_id == method.span_id
        assert signal.parent_id == occurrence.span_id
        assert rule.parent_id == occurrence.span_id
        assert condition.parent_id == rule.span_id
        assert action.parent_id == rule.span_id
        assert method in _ancestors(action, spans)

        # The chain carries the identifying payload.
        assert method.attrs["class"] == "TracedEmployee"
        assert occurrence.attrs["seq"] == signal.attrs["seq"] == rule.attrs["seq"]
        assert rule.attrs["coupling"] == "immediate"
        assert condition.attrs["passed"] is True
        assert outcome.attrs["fired"] is True

        # Exportable as JSONL and renderable by the CLI.
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == len(spans)
        reloaded = load_spans(str(path))
        tree = render_tree(reloaded)
        assert "TracedEmployee.set_salary" in tree
        assert "SalaryCheck" in tree
        report = explain_rule(reloaded, "SalaryCheck")
        assert "fired:     1" in report

    def test_condition_skip_is_visible(self, sentinel):
        fred = TracedEmployee("fred", 100.0)
        sentinel.monitor(
            [fred],
            on=SET_SALARY,
            condition=lambda ctx: ctx.param("salary") > 150,
            action=lambda ctx: None,
            name="SalaryCheck",
        )
        tracer.enable()
        fred.set_salary(120.0)
        tracer.disable()
        condition = _one(tracer.spans(), "condition")
        assert condition.attrs["passed"] is False
        outcome = _one(tracer.spans(), "outcome")
        assert outcome.attrs["fired"] is False
        assert not tracer.find("action")


class TestCompositeDetection:
    def test_partial_match_recorded_as_detect_point(self, sentinel):
        from repro.core import Conjunction, Primitive

        fred = TracedEmployee("fred", 100.0)
        both = Conjunction(
            Primitive(SET_SALARY),
            Primitive("begin TracedEmployee::set_salary(float salary)"),
            name="both-ends",
        )
        sentinel.monitor([fred], on=both, action=lambda ctx: None, name="Both")
        tracer.enable()
        fred.set_salary(1.0)  # only the eom leaf fires: partial match
        tracer.disable()

        detect = _one(tracer.spans(), "detect", operator="Conjunction")
        assert detect.attrs["signalled"] == 0
        assert sum(detect.attrs["pending"]) == 1
        assert not tracer.find("rule")


class TestCouplingModes:
    def _monitored(self, system, coupling):
        fred = TracedEmployee("fred", 100.0)
        system.monitor(
            [fred],
            on=SET_SALARY,
            action=lambda ctx: None,
            name=f"Check-{coupling}",
            coupling=coupling,
        )
        return fred

    def test_immediate_rule_nests_under_occurrence(self, sentinel_db):
        fred = self._monitored(sentinel_db, "immediate")
        tracer.enable()
        fred.set_salary(1.0)
        tracer.disable()
        spans = tracer.spans()
        rule = _one(spans, "rule", rule="Check-immediate")
        assert _one(spans, "occurrence") in _ancestors(rule, spans)

    def test_deferred_rule_attaches_to_committing_txn(self, sentinel_db):
        fred = self._monitored(sentinel_db, "deferred")
        tracer.enable()
        with sentinel_db.db.transaction():
            fred.set_salary(1.0)
            assert not tracer.find("rule")  # queued, not yet executed
        tracer.disable()
        spans = tracer.spans()
        rule = _one(spans, "rule", rule="Check-deferred")
        commit = _one(spans, "txn", op="commit")
        assert rule.parent_id == commit.span_id
        assert rule.attrs["coupling"] == "deferred"
        # The triggering occurrence is linked causally by sequence number.
        assert rule.attrs["seq"] == _one(spans, "occurrence").attrs["seq"]

    def test_detached_rule_runs_outside_the_commit_span(self, sentinel_db):
        fred = self._monitored(sentinel_db, "detached")
        tracer.enable()
        with sentinel_db.db.transaction():
            fred.set_salary(1.0)
            assert not tracer.find("rule")
        tracer.disable()
        spans = tracer.spans()
        rule = _one(spans, "rule", rule="Check-detached")
        assert rule.attrs["coupling"] == "decoupled"
        # The rule ran in its own transaction, not inside the triggering
        # commit: no txn span is an ancestor of the rule span.
        assert all(a.kind != "txn" for a in _ancestors(rule, spans))
        # Both the triggering commit and the decoupled rule's own
        # transaction appear on the timeline.
        commits = [
            s for s in spans if s.kind == "txn" and s.attrs.get("op") == "commit"
        ]
        assert len(commits) == 2

    def test_wal_span_nests_under_commit(self, sentinel_db):
        fred = self._monitored(sentinel_db, "immediate")
        tracer.enable()
        with sentinel_db.db.transaction():
            sentinel_db.db.add(fred)
        tracer.disable()
        spans = tracer.spans()
        wal = _one(spans, "wal")
        commit = _one(spans, "txn", op="commit")
        assert wal.parent_id == commit.span_id
        assert wal.attrs["records"] >= 3  # BEGIN + UPDATE(s) + COMMIT


class TestCouplingAlias:
    def test_detached_parses_to_decoupled(self):
        assert Coupling.parse("detached") is Coupling.DECOUPLED
        assert Coupling.parse(" Detached ") is Coupling.DECOUPLED

    def test_unknown_mode_still_rejected(self):
        with pytest.raises(ValueError):
            Coupling.parse("sideways")


class TestDisabledByDefault:
    def test_no_spans_recorded_when_disabled(self, sentinel):
        fred = TracedEmployee("fred", 100.0)
        sentinel.monitor([fred], on=SET_SALARY, action=lambda ctx: None)
        fred.set_salary(1.0)
        assert tracer.spans() == []
