"""Unit tests for the causality tracer (spans, ring buffer, export)."""

import io
import json

from repro.obs import Span, metrics, tracer
from repro.tools.trace import load_spans


class TestSpanLifecycle:
    def test_nesting_follows_the_ambient_stack(self):
        tracer.enable()
        outer = tracer.begin("method", "Stock.set_price")
        inner = tracer.begin("occurrence", "end Stock::set_price")
        leaf = tracer.point("signal", "price-change", seq=1)
        tracer.end(inner)
        tracer.end(outer)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id

    def test_end_merges_attrs_and_sets_duration(self):
        tracer.enable()
        span = tracer.begin("rule", "R", coupling="immediate")
        tracer.end(span, fired=True)
        assert span.attrs == {"coupling": "immediate", "fired": True}
        assert span.duration_us >= 0.0
        assert tracer.spans() == [span]

    def test_span_contextmanager_closes_on_error(self):
        tracer.enable()
        try:
            with tracer.span("action", "boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        [span] = tracer.spans()
        assert span.name == "boom"
        assert not tracer._stack

    def test_end_unwinds_skipped_inner_spans(self):
        tracer.enable()
        outer = tracer.begin("txn", "commit:1")
        tracer.begin("wal", "orphaned")  # never ended (exception path)
        tracer.end(outer)
        assert not tracer._stack

    def test_finished_spans_feed_latency_histograms(self):
        tracer.enable()
        with tracer.span("rule", "R"):
            pass
        assert metrics.histogram("rule_us").count == 1

    def test_points_feed_counters(self):
        tracer.enable()
        tracer.point("signal", "S")
        assert metrics.counter("trace.signal").value == 1


class TestRingBuffer:
    def test_capacity_bounds_recorded_spans(self):
        tracer.enable(capacity=4)
        for i in range(10):
            tracer.point("signal", f"s{i}")
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]

    def test_disable_keeps_buffer_clear_empties_it(self):
        tracer.enable()
        tracer.point("signal", "kept")
        tracer.disable()
        assert not tracer.enabled
        assert len(tracer.spans()) == 1
        tracer.clear()
        assert tracer.spans() == []

    def test_session_contextmanager(self):
        with tracer.session() as t:
            assert t is tracer
            assert tracer.enabled
        assert not tracer.enabled


class TestFind:
    def test_find_by_kind_and_attrs(self):
        tracer.enable()
        tracer.point("schedule", "A", rule="A", coupling="deferred")
        tracer.point("schedule", "B", rule="B", coupling="immediate")
        tracer.point("signal", "A")
        assert [s.name for s in tracer.find("schedule")] == ["A", "B"]
        assert [s.name for s in tracer.find("schedule", coupling="deferred")] == ["A"]


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer.enable()
        with tracer.span("method", "Stock.set_price", oid=3):
            tracer.point("signal", "S", seq=7)
        path = tmp_path / "spans.jsonl"
        written = tracer.export_jsonl(str(path))
        assert written == 2
        loaded = load_spans(str(path))
        assert [s.kind for s in loaded] == ["signal", "method"]
        by_kind = {s.kind: s for s in loaded}
        assert by_kind["signal"].attrs["seq"] == 7
        assert by_kind["signal"].parent_id == by_kind["method"].span_id
        assert by_kind["method"].attrs["oid"] == 3

    def test_export_to_stream_stringifies_non_json_attrs(self):
        tracer.enable()
        tracer.point("txn", "t", status=object())
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        body = json.loads(buffer.getvalue())
        assert isinstance(body["attrs"]["status"], str)

    def test_span_json_round_trip(self):
        span = Span(5, 2, "rule", "R", 10.0, 3.5, {"seq": 1})
        assert Span.from_json(span.to_json()) == span
