"""The telemetry time-series store and collector: format, crash safety,
retention, read API, and collector lifecycle (ISSUE 8 tentpole)."""

import os
import struct
import threading
import time

import pytest

from repro.core.interface import event_method
from repro.core.reactive import Reactive
from repro.core.system import Sentinel
from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLO, Window
from repro.obs.tsdb import (
    MAGIC,
    VERSION,
    TelemetryCollector,
    TimeSeriesStore,
    flatten_snapshot,
    parse_segment,
    telemetry,
)

T0 = 1_700_000_000.0  # a fixed epoch anchor; all tests use explicit ts


def _store(tmp_path, **kwargs) -> TimeSeriesStore:
    return TimeSeriesStore(str(tmp_path / "tsdb"), **kwargs)


def _fill(store: TimeSeriesStore, frames: int, series: int = 3) -> None:
    for i in range(frames):
        store.append(
            {f"s{j}": float(i * 10 + j) for j in range(series)},
            ts=T0 + i,
        )


class TestSegmentFormat:
    def test_rejects_short_header(self):
        with pytest.raises(ValueError, match="short header"):
            parse_segment(b"RT")

    def test_rejects_bad_magic(self):
        data = struct.pack("<4sBd", b"NOPE", VERSION, T0)
        with pytest.raises(ValueError, match="bad magic"):
            parse_segment(data)

    def test_rejects_future_version(self):
        data = struct.pack("<4sBd", MAGIC, VERSION + 1, T0)
        with pytest.raises(ValueError, match="version"):
            parse_segment(data)

    def test_header_only_segment_is_empty_not_torn(self):
        parsed = parse_segment(struct.pack("<4sBd", MAGIC, VERSION, T0))
        assert parsed.frames == []
        assert parsed.torn_bytes == 0
        assert parsed.end_ts == T0

    def test_roundtrip_preserves_names_and_values(self, tmp_path):
        store = _store(tmp_path)
        store.append({"a": 1.5, "b": -2.0}, ts=T0)
        store.append({"a": 3.0, "c": 0.0}, ts=T0 + 1.25)
        store.close()
        path = os.path.join(store.directory, "tsdb-00000001.seg")
        with open(path, "rb") as handle:
            parsed = parse_segment(handle.read())
        assert sorted(parsed.names.values()) == ["a", "b", "c"]
        assert len(parsed.frames) == 2
        assert parsed.torn_bytes == 0
        # dt is delta-encoded in whole milliseconds from base_ts.
        assert parsed.frames[1][0] == pytest.approx(T0 + 1.25)

    def test_unknown_tag_terminates_parse_as_torn(self, tmp_path):
        store = _store(tmp_path)
        store.append({"a": 1.0}, ts=T0)
        store.close()
        path = os.path.join(store.directory, "tsdb-00000001.seg")
        with open(path, "ab") as handle:
            handle.write(b"\xff garbage trailing bytes")
        with open(path, "rb") as handle:
            parsed = parse_segment(handle.read())
        assert len(parsed.frames) == 1  # intact prefix still readable
        assert parsed.torn_bytes == 24


class TestFlattenSnapshot:
    def test_counters_histograms_and_collectors(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("lat_us").record(10.0)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["hits"] == 3.0
        assert flat["lat_us.count"] == 1.0
        assert flat["lat_us.p50"] == 10.0

    def test_skips_non_numeric_and_nested(self):
        flat = flatten_snapshot(
            {
                "ok": 1,
                "text": "nope",
                "nan": float("nan"),
                "inf": float("inf"),
                "flag": True,
                "summary": {
                    "count": 2,
                    "buckets": {"+Inf": 2},  # nested dict: skipped
                    "label": "x",
                    "ok": True,
                },
            }
        )
        assert flat == {"ok": 1.0, "flag": 1.0, "summary.count": 2.0}

    def test_idle_registry_scrapes_clean(self):
        registry = MetricsRegistry()
        registry.histogram("idle_us")  # summary is just {"count": 0}
        flat = flatten_snapshot(registry.snapshot())
        assert flat["idle_us.count"] == 0.0


class TestStoreReadWrite:
    def test_query_series_latest_and_scrape_times(self, tmp_path):
        store = _store(tmp_path)
        _fill(store, 5)
        assert store.series() == ["s0", "s1", "s2"]
        points = store.query("s1", T0 + 1, T0 + 3)
        assert points == [(T0 + 1, 11.0), (T0 + 2, 21.0), (T0 + 3, 31.0)]
        assert store.latest("s1") == (T0 + 4, 41.0)
        assert store.latest("missing") is None
        assert store.scrape_times() == [T0 + i for i in range(5)]
        assert store.last_scrape_ts() == T0 + 4
        assert store.snapshot_at(T0 + 2) == {"s0": 20.0, "s1": 21.0, "s2": 22.0}
        store.close()

    def test_empty_append_is_a_noop(self, tmp_path):
        store = _store(tmp_path)
        store.append({}, ts=T0)
        assert store.segments() == []
        store.close()

    def test_increase_sums_positive_deltas_only(self, tmp_path):
        store = _store(tmp_path)
        # Counter climbs, process restarts (value drops), climbs again.
        for i, value in enumerate([10.0, 25.0, 3.0, 9.0]):
            store.append({"c": value}, ts=T0 + i * 10)
        # Deltas: +15, -22 (ignored), +6 -> 21, not -1.
        assert store.increase("c", 100.0, at=T0 + 30) == 21.0
        store.close()

    def test_increase_and_rate_need_two_samples(self, tmp_path):
        store = _store(tmp_path)
        store.append({"c": 5.0}, ts=T0)
        assert store.increase("c", 60.0, at=T0) is None
        assert store.rate("c", 60.0, at=T0) is None
        store.append({"c": 11.0}, ts=T0 + 3)
        assert store.increase("c", 60.0, at=T0 + 3) == 6.0
        assert store.rate("c", 60.0, at=T0 + 3) == pytest.approx(2.0)
        store.close()

    def test_aggregate_fns(self, tmp_path):
        store = _store(tmp_path)
        for i, value in enumerate([4.0, 2.0, 6.0]):
            store.append({"g": value}, ts=T0 + i)
        at = T0 + 2
        assert store.aggregate("g", 60.0, "avg", at=at) == 4.0
        assert store.aggregate("g", 60.0, "sum", at=at) == 12.0
        assert store.aggregate("g", 60.0, "min", at=at) == 2.0
        assert store.aggregate("g", 60.0, "max", at=at) == 6.0
        assert store.aggregate("g", 60.0, "count", at=at) == 3.0
        assert store.aggregate("g", 60.0, "last", at=at) == 6.0
        assert store.aggregate("missing", 60.0, at=at) is None
        with pytest.raises(ValueError, match="unknown aggregation"):
            store.aggregate("g", 60.0, "median", at=at)
        store.close()

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="segment_bytes"):
            TimeSeriesStore(str(tmp_path / "x"), segment_bytes=16)
        with pytest.raises(ValueError, match="retain_bytes"):
            TimeSeriesStore(
                str(tmp_path / "y"), segment_bytes=4096, retain_bytes=1024
            )


class TestRollingAndRetention:
    def test_rolls_into_multiple_segments_and_merges_reads(self, tmp_path):
        store = _store(tmp_path, segment_bytes=1024, retain_bytes=1024 * 1024)
        _fill(store, 50, series=8)
        segments = store.segments()
        assert len(segments) > 1
        assert sum(s["frames"] for s in segments) == 50
        # Range reads span segment boundaries transparently.
        assert len(store.query("s0")) == 50
        assert store.scrape_times() == [T0 + i for i in range(50)]
        store.close()

    def test_size_retention_deletes_oldest_first(self, tmp_path):
        store = _store(tmp_path, segment_bytes=1024, retain_bytes=2048)
        _fill(store, 200, series=8)
        segments = store.segments()
        assert segments, "retention must never delete everything"
        # The newest data survives; the oldest frames are gone.
        assert store.latest("s0") == (T0 + 199, 1990.0)
        assert not store.query("s0", T0, T0 + 10)
        total = sum(s["bytes"] for s in segments[:-1])
        assert total <= 2048
        store.close()

    def test_age_retention_drops_stale_segments(self, tmp_path):
        store = _store(
            tmp_path, segment_bytes=1024,
            retain_bytes=1024 * 1024, retain_age_s=50.0,
        )
        _fill(store, 40, series=8)  # spans 40s: nothing ages during fill
        old_segments = len(store.segments())
        assert old_segments > 2
        # Frames far in the future force a size roll, whose retention
        # pass ages out every *sealed* segment from the first batch.
        # Old frames sharing the still-active segment ride along — age
        # is judged per segment by its newest sample.
        for i in range(20):
            store.append(
                {f"s{j}": float(i) for j in range(8)}, ts=T0 + 10_000 + i
            )
        now = T0 + 10_000 + 19
        remaining = store.segments()
        assert len(remaining) < old_segments
        assert all(now - s["end_ts"] <= 50.0 for s in remaining)
        survivors = store.query("s0", T0, T0 + 40)
        assert len(survivors) < 40  # the sealed old segments are gone
        assert store.latest("s0") == (now, 19.0)
        store.close()

    def test_compact_merges_and_drops_aged(self, tmp_path):
        store = _store(tmp_path, segment_bytes=1024, retain_age_s=100.0)
        _fill(store, 60, series=8)
        before = len(store.segments())
        assert before > 1
        stats = store.compact(now=T0 + 120)  # frames before T0+20 age out
        assert stats["segments_before"] == before
        assert stats["segments_after"] == 1
        assert stats["samples_dropped"] == 20 * 8  # ts T0..T0+19 < horizon
        assert stats["bytes_after"] < stats["bytes_before"]
        assert len(store.segments()) == 1
        # Surviving data still queryable; aged data gone.
        assert not store.query("s0", T0, T0 + 19)
        assert len(store.query("s0")) == 40
        # Appends after compaction land in a fresh segment.
        store.append({"s0": 7.0}, ts=T0 + 121)
        assert len(store.segments()) == 2
        store.close()

    def test_stats_totals(self, tmp_path):
        store = _store(tmp_path)
        _fill(store, 4)
        stats = store.stats()
        assert stats["segments"] == 1.0
        assert stats["frames"] == 4.0
        assert stats["samples"] == 12.0
        assert stats["series"] == 3.0
        assert stats["torn_bytes"] == 0.0
        store.close()


class TestCrashSafety:
    """Acceptance: a kill mid-write loses at most the current segment's
    tail, and reopening recovers without touching sealed bytes."""

    def _tear(self, directory: str, cut: int) -> str:
        [name] = sorted(os.listdir(directory))
        path = os.path.join(directory, name)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - cut)
        return path

    def test_torn_final_record_loses_only_the_tail(self, tmp_path):
        store = _store(tmp_path)
        _fill(store, 10)
        store.close()  # simulate the kill: bytes after this are torn
        self._tear(store.directory, cut=7)
        reader = _store(tmp_path)
        points = reader.query("s0")
        assert len(points) == 9  # the 10th frame was mid-write
        assert points[-1] == (T0 + 8, 80.0)
        [segment] = reader.segments()
        assert segment["torn_bytes"] > 0
        reader.close()

    def test_reopen_seals_torn_segment_and_starts_fresh(self, tmp_path):
        store = _store(tmp_path)
        _fill(store, 10)
        store.close()
        self._tear(store.directory, cut=7)
        reopened = _store(tmp_path)
        reopened.append({"s0": 999.0}, ts=T0 + 100)
        files = sorted(os.listdir(reopened.directory))
        assert files == ["tsdb-00000001.seg", "tsdb-00000002.seg"]
        # Reads merge the sealed (torn) segment with the fresh one.
        points = reopened.query("s0")
        assert len(points) == 10
        assert points[-1] == (T0 + 100, 999.0)
        reopened.close()

    def test_corrupt_crc_stops_parse_at_the_flip(self, tmp_path):
        store = _store(tmp_path)
        _fill(store, 5)
        store.close()
        [name] = sorted(os.listdir(store.directory))
        path = os.path.join(store.directory, name)
        with open(path, "r+b") as handle:
            handle.seek(-2, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-2, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        reader = _store(tmp_path)
        assert len(reader.query("s0")) == 4  # final frame's CRC is wrong
        reader.close()


class TestCollectorLifecycle:
    def test_double_start_is_a_noop(self, tmp_path):
        store = _store(tmp_path)
        collector = TelemetryCollector(store, registry=MetricsRegistry(),
                                       interval=60.0)
        try:
            collector.start()
            thread = collector._thread
            collector.start()
            assert collector._thread is thread  # same thread, no respawn
            assert collector.running
        finally:
            collector.stop()
            store.close()
        assert not collector.running

    def test_stop_while_scraping_joins_cleanly(self, tmp_path):
        """stop() lands mid-scrape: a registry collector blocks until the
        stop signal is raised, proving the join covers an active scrape."""
        registry = MetricsRegistry()
        store = _store(tmp_path)
        collector = TelemetryCollector(store, registry=registry,
                                       interval=0.01)
        in_scrape = threading.Event()

        def blocking_counts():
            in_scrape.set()
            collector._stop.wait(timeout=5.0)
            return {"n": 1}

        registry.register_collector("slow", blocking_counts)
        collector.start()
        try:
            assert in_scrape.wait(timeout=5.0)
        finally:
            collector.stop()
            store.close()
        assert not collector.running
        assert collector.scrapes + collector.scrape_errors >= 1

    def test_scrape_exception_is_isolated(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ok").inc()
        store = _store(tmp_path)
        collector = TelemetryCollector(store, registry=registry,
                                       interval=60.0)
        registry.register_collector(
            "boom", lambda: (_ for _ in ()).throw(RuntimeError("bad disk"))
        )
        assert collector.scrape_once(now=T0) is False
        assert collector.scrape_errors == 1
        assert collector.scrapes == 0
        registry.unregister_collector("boom")
        # The very next scrape succeeds: the failure did not poison state.
        assert collector.scrape_once(now=T0 + 5) is True
        assert collector.scrapes == 1
        assert store.latest("ok") == (T0 + 5, 1.0)
        store.close()

    def test_reopen_after_crash_on_torn_segment(self, tmp_path):
        """The full crash loop: collector writes, process dies tearing
        the tail, telemetry reopens over the same directory and scrapes
        into a fresh segment; history spans the crash."""
        directory = str(tmp_path / "tsdb")
        registry = MetricsRegistry()
        registry.counter("events").inc(4)
        collector = TelemetryCollector(
            TimeSeriesStore(directory), registry=registry, interval=60.0
        )
        assert collector.scrape_once(now=T0)
        assert collector.scrape_once(now=T0 + 5)
        collector.store.close()
        [name] = sorted(os.listdir(directory))
        path = os.path.join(directory, name)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)

        reopened = TelemetryCollector(
            TimeSeriesStore(directory), registry=registry, interval=60.0
        )
        registry.counter("events").inc(2)
        assert reopened.scrape_once(now=T0 + 10)
        points = reopened.store.query("events")
        assert points == [(T0, 4.0), (T0 + 10, 6.0)]  # torn frame lost
        assert len(sorted(os.listdir(directory))) == 2
        reopened.store.close()

    def test_interval_validation(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(ValueError, match="interval"):
            TelemetryCollector(store, registry=MetricsRegistry(), interval=0)
        store.close()

    def test_background_thread_scrapes(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("bg").inc()
        store = _store(tmp_path)
        collector = TelemetryCollector(store, registry=registry,
                                       interval=0.01)
        collector.start()
        try:
            deadline = time.time() + 5.0
            while collector.scrapes == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            collector.stop()
            store.close()
        assert collector.scrapes >= 1
        assert store.latest("bg") is not None


class TestTelemetryHandle:
    def test_open_registers_collector_and_close_unregisters(self, tmp_path):
        telemetry.open(str(tmp_path / "t"), interval=60.0, start=False)
        assert telemetry.enabled
        assert telemetry.collector.scrape_once()
        snap = metrics.snapshot()
        assert snap["tsdb.scrapes"] == 1.0
        assert snap["tsdb.segments"] >= 1.0
        telemetry.close()
        assert not telemetry.enabled
        assert "tsdb.scrapes" not in metrics.snapshot()

    def test_reopen_replaces_previous_store(self, tmp_path):
        telemetry.open(str(tmp_path / "a"), interval=60.0, start=False)
        first = telemetry.store
        telemetry.open(str(tmp_path / "b"), interval=60.0, start=False)
        assert telemetry.store is not first
        assert telemetry.store.directory.endswith("b")
        telemetry.close()

    def test_collector_self_scrape_includes_tsdb_series(self, tmp_path):
        telemetry.open(str(tmp_path / "t"), interval=60.0, start=False)
        telemetry.collector.scrape_once(now=T0)
        telemetry.collector.scrape_once(now=T0 + 5)
        assert "tsdb.scrapes" in telemetry.store.series()
        telemetry.close()


class _Stock(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.price = 0.0

    @event_method
    def set_price(self, price: float) -> None:
        self.price = price


class TestSentinelFacade:
    def test_enable_telemetry_and_close_shuts_down(self, tmp_path):
        directory = str(tmp_path / "t")
        with Sentinel(adopt_class_rules=False) as s:
            handle = s.enable_telemetry(directory, interval=60.0, start=False)
            assert handle is telemetry
            assert telemetry.enabled
            assert telemetry.collector.scrape_once()
            # Sentinel.close() tears telemetry down with the rest of obs.
            s.close()
        assert not telemetry.enabled
        assert sorted(os.listdir(directory))  # the segment survived

    def test_disable_telemetry(self, tmp_path):
        with Sentinel(adopt_class_rules=False) as s:
            s.enable_telemetry(str(tmp_path / "t"), interval=60.0,
                               start=False)
            s.disable_telemetry()
            assert not telemetry.enabled
            s.close()

    def test_slo_breach_fires_an_ordinary_eca_rule(self, tmp_path):
        """ISSUE 8 acceptance: an SLO breach raised by the collector is
        an ordinary sysmon event — an ECA rule reacts, and both the
        domain errors and the meta rule's firing land in the audit log.
        Driven synchronously via scrape_once (no background thread)."""
        from repro.obs.audit import read_entries

        audit_path = str(tmp_path / "audit.jsonl")
        with Sentinel(error_policy="isolate", adopt_class_rules=False) as s:
            s.enable_audit(audit_path)
            monitor = s.system_monitor()
            slo = SLO.error_rate(
                "rule-errors",
                numerator="rule_firings{*outcome=error}",
                denominator="rule_firings{*",
                target=0.001,
                windows=(Window(60.0, 10.0),),
            )
            s.enable_telemetry(
                str(tmp_path / "t"), interval=60.0, slos=[slo], start=False
            )
            collector = telemetry.collector

            breaches = []
            s.monitor(
                [monitor],
                on="end SystemMonitor::slo_breach"
                   "(slo, value, target, burn, windows)",
                action=lambda ctx: breaches.append(
                    ctx.occurrence.parameters()
                ),
                name="budget-guard",
            )
            stock = _Stock()
            s.monitor(
                [stock],
                on="end _Stock::set_price(float price)",
                action=lambda ctx: 1 / 0,
                name="flaky",
            )

            stock.set_price(1.0)  # one error on the books
            assert collector.scrape_once(now=T0)
            assert not breaches  # single sample: no increase yet
            stock.set_price(2.0)
            assert collector.scrape_once(now=T0 + 30)

            # 100% of firings errored against a 0.1% objective: breach.
            [params] = breaches
            assert params["slo"] == "rule-errors"
            assert params["value"] == pytest.approx(1.0)
            assert params["burn"] == pytest.approx(1000.0)
            assert monitor.slo_breaches == 1
            [status] = collector.slo_statuses()
            assert status.breached

            # Breach is edge-triggered: still breached != a new event.
            stock.set_price(3.0)
            assert collector.scrape_once(now=T0 + 45)
            assert len(breaches) == 1
            assert metrics.snapshot()[
                "slo_breaches_total{slo=rule-errors}"
            ] == 1

            entries = list(read_entries(audit_path))
            outcomes = [(e["rule"], e["outcome"]) for e in entries]
            assert ("flaky", "error") in outcomes
            assert ("budget-guard", "fired") in outcomes
            s.close()
