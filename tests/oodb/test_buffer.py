"""Tests for the buffer pool."""

import pytest

from repro.oodb.buffer import BufferPool
from repro.oodb.errors import StorageError
from repro.oodb.storage.pages import PAGE_SIZE, Page


def make_file(tmp_path, pages=0, name="f.pages"):
    path = tmp_path / name
    with open(path, "wb") as handle:
        for i in range(pages):
            handle.write(Page(i).to_bytes())
    return str(path)


class TestBufferPool:
    def test_get_reads_from_disk(self, tmp_path):
        path = make_file(tmp_path, pages=3)
        pool = BufferPool()
        pool.attach(path)
        assert pool.get(path, 2).page_id == 2

    def test_hit_vs_miss_accounting(self, tmp_path):
        path = make_file(tmp_path, pages=2)
        pool = BufferPool()
        pool.attach(path)
        pool.get(path, 0)
        pool.get(path, 0)
        pool.get(path, 1)
        assert pool.stats.misses == 2
        assert pool.stats.hits == 1
        assert 0 < pool.stats.hit_rate < 1

    def test_eviction_writes_back_dirty(self, tmp_path):
        path = make_file(tmp_path, pages=4)
        pool = BufferPool(capacity=2)
        pool.attach(path)
        page = pool.get(path, 0)
        page.insert(b"dirty-data")
        pool.get(path, 1)
        pool.get(path, 2)  # evicts page 0
        assert pool.stats.evictions >= 1
        # Re-read from disk: the insert survived eviction.
        reread = pool.get(path, 0)
        assert [p for _s, p in reread.records()] == [b"dirty-data"]

    def test_put_new_grows_file(self, tmp_path):
        path = make_file(tmp_path, pages=1)
        pool = BufferPool()
        pool.attach(path)
        fresh = Page(1)
        fresh.insert(b"new-page")
        pool.put_new(path, fresh)
        pool.flush_file(path)
        import os

        assert os.path.getsize(path) == 2 * PAGE_SIZE

    def test_put_new_duplicate_rejected(self, tmp_path):
        path = make_file(tmp_path, pages=1)
        pool = BufferPool()
        pool.attach(path)
        with pytest.raises(StorageError):
            pool.put_new(path, Page(0))

    def test_unattached_file_rejected(self, tmp_path):
        pool = BufferPool()
        with pytest.raises(StorageError):
            pool.get(str(tmp_path / "nope"), 0)

    def test_missing_page_rejected(self, tmp_path):
        path = make_file(tmp_path, pages=1)
        pool = BufferPool()
        pool.attach(path)
        with pytest.raises(StorageError):
            pool.get(path, 5)

    def test_capacity_bound_respected(self, tmp_path):
        path = make_file(tmp_path, pages=10)
        pool = BufferPool(capacity=3)
        pool.attach(path)
        for i in range(10):
            pool.get(path, i)
        assert pool.cached_page_count() <= 3

    def test_lru_order(self, tmp_path):
        path = make_file(tmp_path, pages=3)
        pool = BufferPool(capacity=2)
        pool.attach(path)
        pool.get(path, 0)
        pool.get(path, 1)
        pool.get(path, 0)  # 0 becomes most-recent
        pool.get(path, 2)  # evicts 1, not 0
        misses_before = pool.stats.misses
        pool.get(path, 0)
        assert pool.stats.misses == misses_before  # still cached

    def test_detach_refcounting(self, tmp_path):
        path = make_file(tmp_path, pages=1)
        pool = BufferPool()
        pool.attach(path)
        pool.attach(path)
        pool.detach(path)
        pool.get(path, 0)  # still attached once
        pool.detach(path)
        with pytest.raises(StorageError):
            pool.get(path, 0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=0)


class TestReadahead:
    def test_readahead_caches_following_pages(self, tmp_path):
        path = make_file(tmp_path, pages=8)
        pool = BufferPool()
        pool.attach(path)
        page = pool.get(path, 0, readahead=4)
        assert page.page_id == 0
        assert pool.stats.misses == 1
        assert pool.stats.readahead_pages == 3
        for i in range(1, 4):
            pool.get(path, i)
        assert pool.stats.misses == 1  # the run was prefetched in one I/O

    def test_readahead_stops_at_end_of_file(self, tmp_path):
        path = make_file(tmp_path, pages=2)
        pool = BufferPool()
        pool.attach(path)
        pool.get(path, 0, readahead=8)
        assert pool.stats.readahead_pages == 1
        pool.get(path, 1)
        assert pool.stats.misses == 1

    def test_readahead_never_replaces_cached_page(self, tmp_path):
        path = make_file(tmp_path, pages=4)
        pool = BufferPool()
        pool.attach(path)
        dirty = pool.get(path, 1)
        dirty.insert(b"unflushed")
        pool.get(path, 0, readahead=4)
        # The in-memory copy (possibly dirty) must win over the disk image.
        assert pool.get(path, 1) is dirty

    def test_readahead_capped_by_capacity(self, tmp_path):
        path = make_file(tmp_path, pages=8)
        pool = BufferPool(capacity=2)
        pool.attach(path)
        page = pool.get(path, 0, readahead=8)
        assert page.page_id == 0
        assert pool.cached_page_count() <= 2
        # The requested page itself must not be evicted by its own readahead.
        misses = pool.stats.misses
        assert pool.get(path, 0).page_id == 0
        assert pool.stats.misses == misses

    def test_readahead_one_is_a_plain_get(self, tmp_path):
        path = make_file(tmp_path, pages=3)
        pool = BufferPool()
        pool.attach(path)
        pool.get(path, 0, readahead=1)
        assert pool.stats.readahead_pages == 0
        assert pool.stats.misses == 1
