"""Tests for the struct-packed binary record codec.

Covers schema compilation, randomized round-trips through the packed
format (schema'd and dynamic attributes, boundary values, fallbacks),
corruption detection, and the JSON-sanitization helper used for WAL undo
images.
"""

import datetime
import struct
import types
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.oodb import Database, Persistent
from repro.oodb import codec
from repro.oodb.errors import SerializationError
from repro.oodb.oid import Oid

_MISSING = object()


class PackedRec(Persistent):
    """Module-level class with a wide schema for round-trip tests."""

    _p_schema = [
        ("count", "int"),
        ("ratio", "float"),
        ("flag", "bool"),
        ("label", "str:8"),
        ("ref", "oid"),
        ("stamp", "datetime"),
    ]

    def __init__(self, **attrs):
        super().__init__()
        for name, value in attrs.items():
            setattr(self, name, value)


@pytest.fixture
def ser(mem_db):
    return mem_db.serializer


def _schema():
    return codec.schema_for(PackedRec)


def _encode(ser, attrs, oid_value=42):
    obj = types.SimpleNamespace(**attrs)
    return codec.encode_packed(
        oid_value,
        obj,
        _schema(),
        frozenset(),
        lambda _name, value: ser.encode_value(value),
    )


def _decode(ser, payload):
    record = codec.decode_packed(payload, lambda _name: PackedRec)
    return {
        name: ser.decode_value(value)
        for name, value in record["attrs"].items()
    }


class TestCompileSchema:
    def test_simple_layout(self):
        schema = codec.compile_schema("C", [("a", "int"), ("b", "str:4")])
        assert [f.name for f in schema.fields] == ["a", "b"]
        assert schema.bitmap_size == 1
        # i64 + (u16 length + 4 padded bytes)
        assert schema.fixed_size == struct.calcsize("<qH4s")

    def test_mapping_declaration(self):
        schema = codec.compile_schema("C", {"a": "float", "b": "bool"})
        assert schema.field_index["b"].type == "bool"

    def test_fingerprint_tracks_layout(self):
        one = codec.compile_schema("C", [("a", "int")])
        two = codec.compile_schema("C", [("a", "float")])
        three = codec.compile_schema("C", [("a", "int")])
        assert one.fingerprint != two.fingerprint
        assert one.fingerprint == three.fingerprint

    @pytest.mark.parametrize(
        "declared",
        [
            [],
            [("a", "int"), ("a", "float")],
            [("", "int")],
            [("_p_oid", "int")],
            [("a", "varchar")],
            [("a", "str:0")],
            [("a", "str:65536")],
            [("a", "str:huge")],
            [("a", 7)],
            "not-pairs",
        ],
    )
    def test_rejects_bad_declarations(self, declared):
        with pytest.raises(SerializationError):
            codec.compile_schema("C", declared)

    def test_schema_for_caches_and_handles_plain_classes(self):
        class Plain(Persistent):
            pass

        assert codec.schema_for(Plain) is None
        schema = codec.schema_for(PackedRec)
        assert schema is codec.schema_for(PackedRec)
        assert schema.class_name == "PackedRec"


# ----------------------------------------------------------------------
# Randomized round-trips.  Each schema'd attribute draws either a value
# the codec can pack or one that must fall back to the dynamic region
# (wrong type, out-of-range int, over-long string, aware datetime);
# extra dynamic attributes ride along.  ``_MISSING`` drops the attribute.
# ----------------------------------------------------------------------
_FIELD_VALUES = {
    "count": st.one_of(
        st.just(_MISSING),
        st.none(),
        st.integers(min_value=-(2**70), max_value=2**70),
        st.text(max_size=4),
    ),
    "ratio": st.one_of(
        st.just(_MISSING),
        st.none(),
        st.floats(allow_nan=False),
        st.integers(min_value=-5, max_value=5),
    ),
    "flag": st.one_of(
        st.just(_MISSING), st.none(), st.booleans(), st.integers(0, 1)
    ),
    "label": st.one_of(
        st.just(_MISSING), st.none(), st.text(max_size=12), st.integers()
    ),
    "ref": st.one_of(
        st.just(_MISSING),
        st.none(),
        st.builds(Oid, st.integers(min_value=1, max_value=2**63)),
    ),
    "stamp": st.one_of(st.just(_MISSING), st.none(), st.datetimes()),
}

_DYNAMIC = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6
    ).map(lambda s: "x_" + s),
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=12),
        st.lists(st.integers(0, 9), max_size=3),
    ),
    max_size=3,
)


@st.composite
def _records(draw):
    attrs = {}
    for name, values in _FIELD_VALUES.items():
        value = draw(values)
        if value is not _MISSING:
            attrs[name] = value
    attrs.update(draw(_DYNAMIC))
    return attrs


class TestRoundTrip:
    @given(_records())
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_every_attribute_survives(self, ser, attrs):
        payload = _encode(ser, attrs)
        assert codec.is_packed(payload)
        assert codec.record_meta(payload) == (42, "PackedRec")
        decoded = _decode(ser, payload)
        assert set(decoded) == set(attrs)
        for name, value in attrs.items():
            got = decoded[name]
            assert got == value
            # bool/int confusion is a silent-corruption classic.
            assert type(got) is type(value)

    def test_max_length_string_packs_exactly(self, ser):
        payload = _encode(ser, {"label": "ab" * 4})
        decoded = _decode(ser, payload)
        assert decoded["label"] == "ab" * 4
        # One byte over must fall back, not truncate.
        over = _encode(ser, {"label": "x" * 9})
        assert _decode(ser, over)["label"] == "x" * 9

    def test_multibyte_string_measured_in_bytes(self, ser):
        # Four snowmen are 12 UTF-8 bytes: over the 8-byte cap, so the
        # value must take the dynamic path and still round-trip intact.
        value = "☃☃☃☃"
        decoded = _decode(ser, _encode(ser, {"label": value}))
        assert decoded["label"] == value
        two = "☃☃"  # 6 bytes: packs
        assert _decode(ser, _encode(ser, {"label": two}))["label"] == two

    def test_aware_and_folded_datetimes_fall_back(self, ser):
        aware = datetime.datetime(
            2020, 5, 1, tzinfo=datetime.timezone.utc
        )
        folded = datetime.datetime(2020, 11, 1, 1, 30, fold=1)
        decoded = _decode(ser, _encode(ser, {"stamp": aware}))
        assert decoded["stamp"] == aware
        assert decoded["stamp"].tzinfo == datetime.timezone.utc
        assert _decode(ser, _encode(ser, {"stamp": folded})).get(
            "stamp"
        ) == folded

    def test_datetime_extremes_pack(self, ser):
        for value in (datetime.datetime.min, datetime.datetime.max):
            decoded = _decode(ser, _encode(ser, {"stamp": value}))
            assert decoded["stamp"] == value

    def test_oid_round_trips_as_oid(self, ser):
        ref = Oid(987_654)
        record = codec.decode_packed(
            _encode(ser, {"ref": ref}), lambda _name: PackedRec
        )
        assert record["attrs"]["ref"] == ref
        assert isinstance(record["attrs"]["ref"], Oid)


class TestCorruption:
    def _payload(self, ser):
        return _encode(
            ser,
            {
                "count": 7,
                "label": "hello",
                "x_extra": [1, 2],
                "stamp": datetime.datetime(2021, 3, 4, 5, 6, 7),
            },
        )

    @given(st.data())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_truncation_is_detected(self, ser, data):
        payload = self._payload(ser)
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        with pytest.raises(SerializationError):
            codec.decode_packed(payload[:cut], lambda _name: PackedRec)

    @given(st.data())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_body_bit_flip_is_detected(self, ser, data):
        payload = self._payload(ser)
        pos = data.draw(
            st.integers(min_value=10, max_value=len(payload) - 1)
        )
        flip = data.draw(st.integers(min_value=1, max_value=255))
        corrupt = (
            payload[:pos] + bytes([payload[pos] ^ flip]) + payload[pos + 1 :]
        )
        with pytest.raises(SerializationError):
            codec.decode_packed(corrupt, lambda _name: PackedRec)

    def test_bad_tag_and_version(self, ser):
        payload = self._payload(ser)
        with pytest.raises(SerializationError, match="format tag"):
            codec.decode_packed(
                b"\x7f" + payload[1:], lambda _name: PackedRec
            )
        with pytest.raises(SerializationError, match="version"):
            codec.decode_packed(
                payload[:1] + b"\x09" + payload[2:],
                lambda _name: PackedRec,
            )

    def test_overlong_string_length_claim_is_rejected(self, ser):
        # Craft a payload whose string-length field exceeds the schema
        # max, with a recomputed (valid) checksum: the decoder must
        # refuse rather than read past the padded region.
        schema = _schema()
        payload = _encode(ser, {"label": "ok"})
        field = schema.field_index["label"]
        name_len = len("PackedRec")
        fixed_start = 10 + 8 + 2 + name_len + schema.bitmap_size
        # Slot offset of the u16 length inside the fixed region.
        length_offset = fixed_start + struct.calcsize("<qdB")
        bad = bytearray(payload)
        struct.pack_into("<H", bad, length_offset, field.max_len + 1)
        body = bytes(bad[10:])
        bad[6:10] = struct.pack("<I", zlib.crc32(body))
        with pytest.raises(SerializationError, match="claims"):
            codec.decode_packed(bytes(bad), lambda _name: PackedRec)

    def test_fingerprint_mismatch_is_a_clear_error(self, ser):
        class PackedRecV2(Persistent, register=False):
            _p_class_name = "PackedRec"
            _p_schema = [("count", "float")]

        payload = self._payload(ser)
        with pytest.raises(SerializationError, match="fingerprint"):
            codec.decode_packed(payload, lambda _name: PackedRecV2)

    def test_schema_removed_is_a_clear_error(self, ser):
        class Bare(Persistent, register=False):
            _p_class_name = "PackedRec"

        payload = self._payload(ser)
        with pytest.raises(SerializationError, match="_p_schema"):
            codec.decode_packed(payload, lambda _name: Bare)


class TestRecordMeta:
    def test_meta_of_packed_payload(self, ser):
        payload = _encode(ser, {"count": 1}, oid_value=77)
        assert codec.record_meta(payload) == (77, "PackedRec")

    def test_meta_of_json_payload(self):
        raw = b'{"oid": 12, "class": "Doc", "attrs": {"a": 1}}'
        assert codec.record_meta(raw) == (12, "Doc")

    def test_meta_of_garbage(self):
        with pytest.raises(SerializationError):
            codec.record_meta(b"\x02garbage")
        with pytest.raises(SerializationError):
            codec.record_meta(b"{not json")


class TestJsonableRecord:
    def test_converts_top_level_oid_and_datetime(self):
        record = {
            "oid": 1,
            "class": "C",
            "attrs": {
                "ref": Oid(9),
                "when": datetime.datetime(2020, 1, 2, 3, 4, 5),
                "plain": [1, 2],
            },
        }
        out = codec.jsonable_record(record)
        assert out["attrs"]["ref"] == {"$oid": 9}
        assert out["attrs"]["when"] == {
            "$datetime": "2020-01-02T03:04:05"
        }
        assert out["attrs"]["plain"] == [1, 2]
        # The input record is left untouched.
        assert isinstance(record["attrs"]["ref"], Oid)

    def test_clean_record_returned_unchanged(self):
        record = {"oid": 1, "class": "C", "attrs": {"a": 1, "b": "x"}}
        assert codec.jsonable_record(record) is record

    def test_import_roundtrip_of_sanitized_record(self, mem_db):
        # The sanitized form is exactly what decode_value turns back
        # into live values — the WAL undo image stays faithful.
        when = datetime.datetime(2020, 1, 2, 3, 4, 5)
        out = codec.jsonable_record(
            {"oid": 1, "class": "C", "attrs": {"ref": Oid(9), "when": when}}
        )
        ser = mem_db.serializer
        assert ser.decode_value(out["attrs"]["ref"]) == Oid(9)
        assert ser.decode_value(out["attrs"]["when"]) == when


class TestDatabaseIntegration:
    def test_packed_records_round_trip_through_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        stamp = datetime.datetime(2022, 7, 8, 9, 10, 11, 121314)
        with db.transaction():
            rec = PackedRec(
                count=41,
                ratio=2.5,
                flag=True,
                label="abc",
                stamp=stamp,
                x_dynamic={"nested": [1, 2, 3]},
            )
            other = PackedRec(count=1)
            db.set_root("rec", rec)
            db.set_root("other", other)
            rec.ref = other._p_oid
        db.close()

        db2 = Database(path, sync=False)
        rec = db2.get_root("rec")
        assert (rec.count, rec.ratio, rec.flag) == (41, 2.5, True)
        assert rec.label == "abc" and rec.stamp == stamp
        assert rec.x_dynamic == {"nested": [1, 2, 3]}
        assert db2.fetch(rec.ref).count == 1
        db2.close()

    def test_stored_payload_is_packed_and_smaller_than_json(self, tmp_path):
        import json

        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            rec = PackedRec(
                count=123,
                ratio=1.25,
                flag=False,
                label="tag",
                stamp=datetime.datetime(2020, 1, 1),
            )
            db.set_root("rec", rec)
        oid = rec._p_oid
        rid = db._locations[oid]
        payload = db._heap.read(rid)
        assert codec.is_packed(payload)
        record = db.serializer.record_from_payload(payload)
        twin = json.dumps(
            codec.jsonable_record(record),
            separators=(",", ":"),
            sort_keys=True,
        ).encode()
        assert len(payload) < len(twin)
        db.close()

    def test_unschema_classes_still_write_json(self, tmp_path):
        class LooseRec(Persistent):
            def __init__(self, v):
                super().__init__()
                self.v = v

        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            db.set_root("loose", LooseRec(5))
        oid = db.get_root("loose")._p_oid
        payload = db._heap.read(db._locations[oid])
        assert not codec.is_packed(payload)
        assert payload.lstrip()[:1] == b"{"
        db.close()

    def test_unserializable_dynamic_attr_names_the_culprit(self, mem_db):
        rec = PackedRec(count=1)
        rec.x_bad = object()
        with pytest.raises(SerializationError, match="x_bad"):
            with mem_db.transaction():
                mem_db.set_root("rec", rec)
