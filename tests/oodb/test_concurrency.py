"""Real-thread concurrency: 2PL writers, MVCC readers, deadlock recovery.

Everything here runs actual ``threading.Thread`` workers against one
``Database(locking=True)`` — the single-threaded lock-manager tests live
in ``test_locks.py``.  Covered:

* wait-for-graph hygiene when waiters abort (deadlock victim, timeout)
  across three real threads — a phantom edge left behind would make
  later cycle checks hallucinate deadlocks;
* deadlock-retry convergence: writers updating the same object pair in
  opposite orders must all commit within the retry budget and lose no
  increments;
* MVCC snapshot isolation: a snapshot pinned before a write keeps
  serving the old attribute values, lock-free, while writers commit;
* a short mixed-workload stress under a ``faulthandler`` watchdog
  (``REPRO_STRESS_SECONDS`` stretches it for the CI concurrency job).
"""

from __future__ import annotations

import faulthandler
import os
import threading
import time

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.errors import DeadlockDetected, LockTimeout
from repro.oodb.locks import LockManager, LockMode
from repro.oodb.oid import Oid
from repro.oodb.schema import ClassRegistry


@pytest.fixture
def registry():
    return ClassRegistry()


@pytest.fixture
def locked_db(tmp_path, registry):
    db = Database(str(tmp_path / "db"), registry=registry, locking=True)
    yield db
    db.close()


def _join_all(threads, timeout=30.0):
    for t in threads:
        t.join(timeout)
    alive = [t.name for t in threads if t.is_alive()]
    assert not alive, f"threads still running: {alive}"


class TestWaitForGraphHygiene:
    """Satellite: aborted waiters must not strand wait-for edges."""

    def test_three_thread_deadlock_cycle_cleans_edges(self):
        """A 3-cycle (t1→t2→t3→t1) aborts one victim; the graph drains."""
        locks = LockManager(timeout=10.0)
        oids = [Oid(1), Oid(2), Oid(3)]
        locks.acquire(1, oids[0], LockMode.EXCLUSIVE)
        locks.acquire(2, oids[1], LockMode.EXCLUSIVE)
        locks.acquire(3, oids[2], LockMode.EXCLUSIVE)

        holding = threading.Barrier(3)
        outcomes: dict[int, str] = {}

        def chase(txn_id: int, wanted: Oid) -> None:
            holding.wait()
            # Stagger so the wait-for edges build up one by one and the
            # *last* requester is the one that closes the cycle.
            time.sleep(0.05 * txn_id)
            try:
                locks.acquire(txn_id, wanted, LockMode.EXCLUSIVE)
                outcomes[txn_id] = "granted"
            except DeadlockDetected:
                outcomes[txn_id] = "deadlock"
            # Victim aborts, winners commit: both release their locks,
            # which is what lets the remaining waiters unwind.
            locks.release_all(txn_id)

        threads = [
            threading.Thread(target=chase, args=(1, oids[1]), name="t1"),
            threading.Thread(target=chase, args=(2, oids[2]), name="t2"),
            threading.Thread(target=chase, args=(3, oids[0]), name="t3"),
        ]
        for t in threads:
            t.start()
        # The victim releasing its locks unblocks the remaining waiters.
        _join_all(threads)

        assert sorted(outcomes.values()) == ["deadlock", "granted", "granted"]
        assert locks.waiting_edges() == {}
        assert locks.lock_table_size() == 0

    def test_timed_out_waiter_leaves_no_phantom_edge(self):
        """After a LockTimeout the ex-waiter's edge must be gone: a later

        request by the old blocker toward the timed-out transaction would
        otherwise see a cycle that does not exist."""
        locks = LockManager(timeout=10.0)
        a, b = Oid(10), Oid(11)
        locks.acquire(1, a, LockMode.EXCLUSIVE)
        locks.acquire(2, b, LockMode.EXCLUSIVE)

        with pytest.raises(LockTimeout):
            locks.acquire(2, a, LockMode.EXCLUSIVE, timeout=0.05)
        assert locks.waiting_edges() == {}

        # txn 1 now waits on txn 2's lock from a real thread.  With the
        # phantom 2→1 edge this would be (mis)diagnosed as a deadlock.
        result: list[str] = []

        def blocked_then_granted() -> None:
            try:
                locks.acquire(1, b, LockMode.EXCLUSIVE, timeout=5.0)
                result.append("granted")
            except (DeadlockDetected, LockTimeout) as exc:
                result.append(type(exc).__name__)

        t = threading.Thread(target=blocked_then_granted)
        t.start()
        time.sleep(0.1)
        locks.release_all(2)
        _join_all([t])
        assert result == ["granted"]
        assert locks.waiting_edges() == {}


class TestDeadlockRetryConvergence:
    """Satellite: opposite-order writers converge within the retry budget."""

    def test_opposite_order_writers_lose_no_updates(self, locked_db, registry):
        class Pair(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.value = 0

        db = locked_db
        with db.transaction():
            first = db.add(Pair())
            second = db.add(Pair())

        per_thread = 30
        start = threading.Barrier(2)
        errors: list[BaseException] = []

        def worker(order: tuple[Oid, Oid]) -> None:
            try:
                start.wait()
                for _ in range(per_thread):
                    def fn():
                        for oid in order:
                            db.fetch(oid).value += 1
                    db.run_transaction(fn, attempts=25)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=((first, second),)),
            threading.Thread(target=worker, args=((second, first),)),
        ]
        for t in threads:
            t.start()
        _join_all(threads)

        assert errors == []
        with db.snapshot() as snap:
            assert snap.record(first)["attrs"]["value"] == 2 * per_thread
            assert snap.record(second)["attrs"]["value"] == 2 * per_thread
        assert db.locks.waiting_edges() == {}
        assert db.locks.lock_table_size() == 0


class TestSnapshotIsolation:
    def test_pinned_snapshot_serves_pre_images_lock_free(
        self, locked_db, registry
    ):
        class Doc(Persistent, registry=registry):
            def __init__(self, rev: int = 0) -> None:
                super().__init__()
                self.rev = rev

        db = locked_db
        with db.transaction():
            oids = [db.add(Doc(i)) for i in range(8)]

        acquisitions = 0
        inner = db.locks.acquire

        def counting(*args, **kwargs):
            nonlocal acquisitions
            acquisitions += 1
            return inner(*args, **kwargs)

        snap = db.begin_snapshot()
        try:
            before = [snap.record(o)["attrs"]["rev"] for o in oids]
            done = threading.Event()

            def writer() -> None:
                for round_no in range(1, 4):
                    for oid in oids:
                        def fn():
                            db.fetch(oid).rev = 100 * round_no
                        db.run_transaction(fn)
                done.set()

            t = threading.Thread(target=writer)
            t.start()
            db.locks.acquire = counting  # type: ignore[method-assign]
            try:
                while not done.is_set():
                    for oid in oids:
                        record = snap.record(oid)
                        assert record["attrs"]["rev"] < 100
            finally:
                db.locks.acquire = inner  # type: ignore[method-assign]
            _join_all([t])
            after = [snap.record(o)["attrs"]["rev"] for o in oids]
            assert after == before
        finally:
            db.end_snapshot(snap)

        # Only the writer thread ever touched the lock manager.
        # (The wrapper was installed after the writer started, so give
        # the count meaning by re-reading under a fresh wrapper.)
        acquisitions = 0
        db.locks.acquire = counting  # type: ignore[method-assign]
        try:
            with db.snapshot() as fresh:
                for oid in oids:
                    assert fresh.record(oid)["attrs"]["rev"] == 300
        finally:
            db.locks.acquire = inner  # type: ignore[method-assign]
        assert acquisitions == 0


class TestMixedWorkloadStress:
    def test_stress_mixed_clients(self, locked_db, registry):
        """4 writer clients + 1 snapshot reader, watchdogged.

        Quick by default; the CI concurrency job sets
        ``REPRO_STRESS_SECONDS=10`` for the long soak.
        """
        class Cell(Persistent, registry=registry):
            def __init__(self, n: int = 0) -> None:
                super().__init__()
                self.n = n
                self.total = 0

        db = locked_db
        with db.transaction():
            oids = [db.add(Cell(i)) for i in range(16)]

        if os.environ.get("REPRO_LOCKDEP"):
            # CI soak variant: run the whole stress under the lock-order
            # sanitizer to prove it survives contention and retries.
            db.enable_lockdep()

        seconds = float(os.environ.get("REPRO_STRESS_SECONDS", "0.5"))
        faulthandler.dump_traceback_later(max(60.0, seconds * 6))
        try:
            stop = threading.Event()
            counts = [0] * 4
            errors: list[BaseException] = []

            def writer(tid: int) -> None:
                part = oids[tid * 4:(tid + 1) * 4]
                i = 0
                try:
                    while not stop.is_set():
                        def fn():
                            cell = db.fetch(part[i % 4])
                            cell.total += 1
                        db.run_transaction(fn, attempts=25)
                        counts[tid] += 1
                        i += 1
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    stop.set()

            def reader() -> None:
                try:
                    while not stop.is_set():
                        with db.snapshot() as snap:
                            seen = [
                                snap.record(oid)["attrs"]["total"]
                                for oid in oids
                            ]
                        assert all(v >= 0 for v in seen)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    stop.set()

            threads = [
                threading.Thread(target=writer, args=(t,), name=f"w{t}")
                for t in range(4)
            ]
            threads.append(threading.Thread(target=reader, name="r"))
            for t in threads:
                t.start()
            time.sleep(seconds)
            stop.set()
            _join_all(threads)

            assert errors == []
            with db.snapshot() as snap:
                persisted = sum(
                    snap.record(oid)["attrs"]["total"] for oid in oids
                )
            assert persisted == sum(counts)
            assert db.locks.waiting_edges() == {}
            assert db.locks.lock_table_size() == 0
        finally:
            faulthandler.cancel_dump_traceback_later()
