"""Tests for the Database façade: roots, lifecycle, persistence round-trips."""

import pytest

from repro.oodb import (
    Database,
    DatabaseClosed,
    ObjectNotFound,
    Persistent,
)
from repro.oodb.oid import NULL_OID, Oid


class Node(Persistent):
    def __init__(self, label="", next_node=None):
        super().__init__()
        self.label = label
        self.next_node = next_node


class TestFetch:
    def test_identity_map(self, db):
        node = Node("a")
        db.add(node)
        db.commit()
        assert db.fetch(node.oid) is node

    def test_fetch_after_evict_rebuilds(self, db):
        node = Node("a")
        db.add(node)
        db.commit()
        oid = node.oid
        db.evict_cache()
        fetched = db.fetch(oid)
        assert fetched is not node
        assert fetched.label == "a"

    def test_fetch_unknown(self, db):
        with pytest.raises(ObjectNotFound):
            db.fetch(Oid(9999))

    def test_fetch_null(self, db):
        with pytest.raises(ObjectNotFound):
            db.fetch(NULL_OID)

    def test_contains(self, db):
        node = Node()
        db.add(node)
        db.commit()
        assert db.contains(node.oid)
        assert not db.contains(Oid(12345))

    def test_reference_chain_restores(self, db):
        c = Node("c")
        b = Node("b", c)
        a = Node("a", b)
        db.add(a)
        db.commit()
        oid = a.oid
        db.evict_cache()
        restored = db.fetch(oid)
        assert restored.next_node.next_node.label == "c"


class TestRoots:
    def test_set_get_root(self, db):
        node = Node("rooted")
        db.set_root("main", node)
        db.commit()
        assert db.get_root("main") is node

    def test_root_survives_reopen(self, tmp_path):
        path = str(tmp_path / "rdb")
        db = Database(path)
        db.set_root("entry", Node("persisted"))
        db.commit()
        db.close()
        db2 = Database(path)
        assert db2.get_root("entry").label == "persisted"
        db2.close()

    def test_missing_root_default(self, db):
        assert db.get_root("nope") is None
        assert db.get_root("nope", default=5) == 5

    def test_root_names(self, db):
        db.set_root("b", Node())
        db.set_root("a", Node())
        db.commit()
        assert db.root_names() == ["a", "b"]

    def test_root_update_is_transactional(self, db):
        first = Node("first")
        db.set_root("slot", first)
        db.commit()
        try:
            with db.transaction():
                db.set_root("slot", Node("second"))
                raise RuntimeError
        except RuntimeError:
            pass
        assert db.get_root("slot") is first


class TestLifecycle:
    def test_closed_database_rejects_work(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        db.close()
        with pytest.raises(DatabaseClosed):
            db.add(Node())
        with pytest.raises(DatabaseClosed):
            db.fetch(Oid(1))

    def test_close_is_idempotent(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        db.close()
        db.close()

    def test_close_aborts_active_transaction(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        node = Node("uncommitted")
        db.add(node)  # implicit txn, never committed
        db.close()
        db2 = Database(str(tmp_path / "db"))
        assert db2.object_count() == 0
        db2.close()

    def test_context_manager(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            db.set_root("x", Node("ctx"))
            db.commit()
        with Database(str(tmp_path / "db")) as db2:
            assert db2.get_root("x").label == "ctx"

    def test_object_count(self, mem_db):
        assert mem_db.object_count() == 0
        mem_db.add(Node())
        mem_db.add(Node())
        assert mem_db.object_count() == 2
        mem_db.commit()
        assert mem_db.object_count() == 2

    def test_temporary_constructor(self):
        import shutil

        db = Database.temporary()
        try:
            db.add(Node())
            db.commit()
        finally:
            path = db._dir
            db.close()
            shutil.rmtree(path, ignore_errors=True)


class TestFullRoundTrips:
    def test_many_objects_survive_reopen(self, tmp_path):
        path = str(tmp_path / "many")
        db = Database(path)
        with db.transaction():
            for i in range(200):
                db.add(Node(f"node-{i}"))
        db.close()
        db2 = Database(path)
        assert db2.object_count() == 200
        labels = {n.label for n in db2.query(Node)}
        assert labels == {f"node-{i}" for i in range(200)}
        db2.close()

    def test_update_heavy_workload(self, tmp_path):
        path = str(tmp_path / "upd")
        db = Database(path, sync=False)
        nodes = [Node(str(i)) for i in range(20)]
        with db.transaction():
            for node in nodes:
                db.add(node)
        for round_number in range(10):
            with db.transaction():
                for node in nodes:
                    node.label = f"round-{round_number}"
        db.close()
        db2 = Database(path)
        assert all(n.label == "round-9" for n in db2.query(Node))
        db2.close()

    def test_mixed_create_update_delete(self, tmp_path):
        path = str(tmp_path / "mix")
        db = Database(path, sync=False)
        keep = Node("keep")
        drop = Node("drop")
        with db.transaction():
            db.add(keep)
            db.add(drop)
        with db.transaction():
            keep.label = "kept"
            db.delete(drop)
            db.add(Node("fresh"))
        db.close()
        db2 = Database(path)
        labels = sorted(n.label for n in db2.query(Node))
        assert labels == ["fresh", "kept"]
        db2.close()
