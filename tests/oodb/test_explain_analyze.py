"""EXPLAIN ANALYZE: actual per-stage numbers next to planner estimates.

The text goldens pin the full rendering — estimated vs actual rows for
every access path — with only the wall-time line masked (the single
nondeterministic line).
"""

import re

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.query import AnalyzedPlan, ExecutionStats, QueryPlan


class Emp(Persistent):
    def __init__(self, name, salary, dept, rating):
        super().__init__()
        self.name = name
        self.salary = salary
        self.dept = dept
        self.rating = rating


@pytest.fixture
def staffed(mem_db):
    objects = []
    for i in range(20):
        emp = Emp(f"e{i:02d}", 1000 + i * 100, "eng" if i % 2 else "ops", i)
        mem_db.add(emp)
        objects.append(emp)
    mem_db.commit()
    mem_db.create_index(Emp, "salary")
    mem_db.create_index(Emp, "dept")
    mem_db.create_index(Emp, "name", kind="hash")
    return mem_db, objects


def masked(analyzed):
    """The describe() text with the (nondeterministic) time line masked."""
    return re.sub(
        r"  time: access [0-9.]+µs, fetch [0-9.]+µs, filter [0-9.]+µs, "
        r"sort [0-9.]+µs, total [0-9.]+µs",
        "  time: <masked>",
        analyzed.describe(),
    )


GOLDEN_EXTENT_SCAN = """\
query plan: Emp (subclasses included)
  access: extent_scan, 20 extent rows
  residual: rating > 14
  index-only count/exists: no
analyze:
  rows: est ~20, scanned 20, returned 5
  index probes: 0
  fetch: 20 objects, 0 page pins
  buffer pool: untouched
  residual filter: dropped 15
  time: <masked>"""

GOLDEN_INDEX_EQ = """\
query plan: Emp (subclasses included)
  access: index_eq via btree:Emp.dept (dept == 'eng'), est ~10 rows
  index-only count/exists: yes
analyze:
  rows: est ~10, scanned 10, returned 10
  index probes: 1
  fetch: 10 objects, 0 page pins
  buffer pool: untouched
  residual filter: dropped 0
  time: <masked>"""

GOLDEN_INDEX_RANGE = """\
query plan: Emp (subclasses included)
  access: index_range via btree:Emp.salary (salary > 2500), est ~5 rows
  index-only count/exists: yes
analyze:
  rows: est ~5, scanned 4, returned 4
  index probes: 1
  fetch: 4 objects, 0 page pins
  buffer pool: untouched
  residual filter: dropped 0
  time: <masked>"""

GOLDEN_HASH_EQ = """\
query plan: Emp (subclasses included)
  access: hash_eq via hash:Emp.name (name == 'e05'), est ~1 rows
  index-only count/exists: yes
analyze:
  rows: est ~1, scanned 1, returned 1
  index probes: 1
  fetch: 1 objects, 0 page pins
  buffer pool: untouched
  residual filter: dropped 0
  time: <masked>"""

GOLDEN_INDEX_INTERSECT = """\
query plan: Emp (subclasses included)
  access: index_intersect via btree:Emp.dept (dept == 'eng'), est ~10 rows
  intersect: btree:Emp.salary (salary > 1400), est ~16 rows
  index-only count/exists: yes
analyze:
  rows: est ~10, scanned 8, returned 8
  index probes: 2
  fetch: 8 objects, 0 page pins
  buffer pool: untouched
  residual filter: dropped 0
  time: <masked>"""

GOLDEN_INDEX_ORDER = """\
query plan: Emp (subclasses included)
  access: index_order, 20 extent rows
  order: salary desc (streamed in key order)
  limit: 3
  index-only count/exists: yes
analyze:
  rows: est ~20, scanned 20, returned 3
  index probes: 1
  fetch: 20 objects, 0 page pins
  buffer pool: untouched
  residual filter: dropped 0
  time: <masked>"""

GOLDEN_SORTED = """\
query plan: Emp (subclasses included)
  access: extent_scan, 20 extent rows
  residual: rating > 14
  order: rating asc (sorted in memory)
  index-only count/exists: no
analyze:
  rows: est ~20, scanned 20, returned 5
  index probes: 0
  fetch: 20 objects, 0 page pins
  buffer pool: untouched
  residual filter: dropped 15
  time: <masked>"""


class TestGoldenText:
    def test_extent_scan(self, staffed):
        db, _ = staffed
        analyzed = db.query(Emp).where_op("rating", ">", 14).explain(
            analyze=True
        )
        assert masked(analyzed) == GOLDEN_EXTENT_SCAN

    def test_index_eq(self, staffed):
        db, _ = staffed
        analyzed = db.query(Emp).where_op("dept", "==", "eng").explain(
            analyze=True
        )
        assert masked(analyzed) == GOLDEN_INDEX_EQ

    def test_index_range(self, staffed):
        db, _ = staffed
        analyzed = db.query(Emp).where_op("salary", ">", 2500).explain(
            analyze=True
        )
        assert masked(analyzed) == GOLDEN_INDEX_RANGE

    def test_hash_eq(self, staffed):
        db, _ = staffed
        analyzed = db.query(Emp).where_eq("name", "e05").explain(analyze=True)
        assert masked(analyzed) == GOLDEN_HASH_EQ

    def test_index_intersect(self, staffed):
        db, _ = staffed
        analyzed = (
            db.query(Emp)
            .where_op("dept", "==", "eng")
            .where_op("salary", ">", 1400)
            .explain(analyze=True)
        )
        assert masked(analyzed) == GOLDEN_INDEX_INTERSECT

    def test_index_order(self, staffed):
        db, _ = staffed
        analyzed = (
            db.query(Emp)
            .order_by("salary", descending=True)
            .limit(3)
            .explain(analyze=True)
        )
        assert masked(analyzed) == GOLDEN_INDEX_ORDER

    def test_in_memory_sort(self, staffed):
        db, _ = staffed
        analyzed = (
            db.query(Emp)
            .where_op("rating", ">", 14)
            .order_by("rating")
            .explain(analyze=True)
        )
        assert masked(analyzed) == GOLDEN_SORTED


class TestGoldenJson:
    def test_json_shape(self, staffed):
        db, _ = staffed
        analyzed = db.query(Emp).where_op("salary", ">", 2500).explain(
            analyze=True
        )
        data = analyzed.to_json()
        assert data["plan"] == {
            "class_name": "Emp",
            "include_subclasses": True,
            "access_path": "index_range",
            "index_filters": [
                {
                    "attribute": "salary",
                    "op": ">",
                    "value": "2500",
                    "index": "Emp.salary",
                    "kind": "btree",
                    "estimated_rows": 5,
                }
            ],
            "residual_filters": [],
            "predicates": 0,
            "order": None,
            "sort_needed": False,
            "index_only": True,
            "limit": None,
            "estimated_rows": 5,
            "extent_size": 20,
        }
        actual = data["actual"]
        assert actual["candidates"] == 4
        assert actual["fetched"] == 4
        assert actual["returned"] == 4
        assert actual["residual_dropped"] == 0
        assert actual["index_probes"] == 1
        assert actual["page_pins"] == 0
        assert actual["buffer_hits"] == 0
        assert actual["buffer_misses"] == 0
        assert actual["buffer_hit_rate"] == 0.0
        for key in ("access_us", "fetch_us", "filter_us", "sort_us",
                    "total_us"):
            assert isinstance(actual[key], float) and actual[key] >= 0.0

    def test_misestimate_annotation(self):
        plan = QueryPlan(
            class_name="Emp", include_subclasses=True,
            access_path="index_range", index_filters=(),
            residual_filters=(), predicates=0, order=None,
            sort_needed=False, index_only=False, limit=None,
            estimated_rows=4, extent_size=100,
        )
        stats = ExecutionStats(candidates=32, fetched=32, returned=32)
        text = AnalyzedPlan(plan, stats).describe()
        assert "rows: est ~4, scanned 32, returned 32 (misestimate 8x)" in text


class TestSemantics:
    def test_analyze_returns_same_rows_as_execution(self, staffed):
        db, objects = staffed
        query = db.query(Emp).where_op("salary", ">", 1500)
        assert {o.name for o in query} == {
            o.name for o in objects if o.salary > 1500
        }
        analyzed = query.explain(analyze=True)
        assert analyzed.stats.returned == sum(
            1 for o in objects if o.salary > 1500
        )

    def test_explain_without_analyze_returns_plan(self, staffed):
        db, _ = staffed
        plan = db.query(Emp).explain()
        assert isinstance(plan, QueryPlan)
        assert not isinstance(plan, AnalyzedPlan)

    def test_profile_queries_flag_keeps_last_profile(self):
        db = Database(profile_queries=True)
        try:
            for i in range(5):
                db.add(Emp(f"p{i}", 100 * i, "eng", i))
            db.commit()
            rows = list(db.query(Emp).where_op("rating", ">", 2))
            assert len(rows) == 2
            profile = db.last_query_profile
            assert isinstance(profile, AnalyzedPlan)
            assert profile.stats.returned == 2
            assert profile.plan.access_path == "extent_scan"
        finally:
            db.close()

    def test_profiling_off_leaves_no_profile(self):
        db = Database()
        try:
            db.add(Emp("x", 1, "eng", 1))
            db.commit()
            list(db.query(Emp))
            assert db.last_query_profile is None
        finally:
            db.close()

    def test_limit_terminates_early_in_analyzed_streaming(self, staffed):
        db, _ = staffed
        analyzed = db.query(Emp).limit(2).explain(analyze=True)
        assert analyzed.stats.returned == 2
        # Candidates stop at the fetch chunk containing the limit, not
        # the full extent (mirrors the normal streaming path).
        assert analyzed.stats.candidates <= 20

    def test_on_disk_query_counts_buffer_and_pins(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        with db.transaction():
            for i in range(50):
                db.add(Emp(f"d{i:02d}", i * 10, "eng", i))
        db.close()

        db = Database(path)  # cold cache: fetches must touch the heap
        try:
            analyzed = db.query(Emp).where_op("rating", ">=", 0).explain(
                analyze=True
            )
            assert analyzed.stats.returned == 50
            assert analyzed.stats.page_pins > 0
            assert (
                analyzed.stats.buffer_hits + analyzed.stats.buffer_misses > 0
            )
        finally:
            db.close()
