"""Tests for garbage collection and large-object storage via the database."""

import pytest

from repro.oodb import Database, ObjectNotFound, Persistent, TransactionError


class Node(Persistent):
    def __init__(self, label="", link=None):
        super().__init__()
        self.label = label
        self.link = link


class TestCollectGarbage:
    def test_unreferenced_objects_swept(self, db):
        kept = Node("kept")
        db.set_root("kept", kept)
        orphan = Node("orphan")
        db.add(orphan)
        db.commit()
        orphan_oid = orphan.oid
        marked, swept = db.collect_garbage()
        assert swept == 1
        with pytest.raises(ObjectNotFound):
            db.fetch(orphan_oid)
        assert db.get_root("kept") is kept

    def test_reachable_chain_survives(self, db):
        tail = Node("tail")
        middle = Node("middle", tail)
        head = Node("head", middle)
        db.set_root("head", head)
        db.commit()
        marked, swept = db.collect_garbage()
        assert swept == 0
        assert marked >= 4  # root map + three nodes

    def test_cycles_do_not_hang_and_sweep_together(self, db):
        a = Node("a")
        b = Node("b", a)
        a.link = b
        db.add(a)
        db.commit()
        # The cycle is reachable from nothing: both go.
        _marked, swept = db.collect_garbage()
        assert swept == 2

    def test_extra_roots_protect(self, db):
        pinned = Node("pinned")
        db.add(pinned)
        db.commit()
        _marked, swept = db.collect_garbage(extra_roots=[pinned])
        assert swept == 0
        assert db.fetch(pinned.oid) is pinned

    def test_refs_inside_containers_traced(self, db):
        leaf = Node("leaf")
        holder = Node("holder")
        holder.bag = {"items": [leaf], "pair": (leaf, 1)}
        db.set_root("holder", holder)
        db.commit()
        _marked, swept = db.collect_garbage()
        assert swept == 0
        assert db.fetch(leaf.oid) is leaf

    def test_rejects_active_transaction(self, db):
        with db.transaction():
            db.add(Node())
            with pytest.raises(TransactionError):
                db.collect_garbage()

    def test_sweep_is_transactional_and_durable(self, tmp_path):
        path = str(tmp_path / "gcdb")
        db = Database(path)
        db.set_root("root", Node("root"))
        db.add(Node("junk1"))
        db.add(Node("junk2"))
        db.commit()
        _marked, swept = db.collect_garbage()
        assert swept == 2
        db.close()
        reopened = Database(path)
        assert reopened.object_count() == 2  # root map + root node
        reopened.close()

    def test_empty_database(self, mem_db):
        marked, swept = mem_db.collect_garbage()
        assert (marked, swept) == (0, 0)


class TestLargeObjects:
    """Overflow chains end-to-end through the object layer."""

    def test_large_attribute_roundtrip(self, db):
        blob = "x" * 100_000
        node = Node(label=blob)
        db.add(node)
        db.commit()
        oid = node.oid
        db.evict_cache()
        assert db.fetch(oid).label == blob

    def test_large_bytes_attribute(self, db):
        node = Node()
        node.payload = bytes(range(256)) * 300  # ~77 KB binary
        db.add(node)
        db.commit()
        db.evict_cache()
        assert db.fetch(node.oid).payload == node.payload

    def test_large_object_survives_reopen(self, tmp_path):
        path = str(tmp_path / "blobdb")
        db = Database(path)
        blob = "big " * 30_000  # ~120 KB
        db.set_root("blob", Node(label=blob))
        db.commit()
        db.close()
        reopened = Database(path)
        assert reopened.get_root("blob").label == blob
        reopened.close()

    def test_large_object_update_and_shrink(self, db):
        node = Node(label="L" * 50_000)
        db.add(node)
        db.commit()
        with db.transaction():
            node.label = "small"
        db.evict_cache()
        assert db.fetch(node.oid).label == "small"

    def test_large_object_rollback(self, db):
        node = Node(label="original")
        db.add(node)
        db.commit()
        try:
            with db.transaction():
                node.label = "H" * 60_000
                raise RuntimeError
        except RuntimeError:
            pass
        assert node.label == "original"
        db.evict_cache()
        assert db.fetch(node.oid).label == "original"
