"""Tests for WAL group commit and the fsync policy knob.

Group commit batches a transaction's BEGIN/UPDATE.../COMMIT into a single
buffered write with one flush (and at most one fsync) at the commit
boundary.  The on-disk format is unchanged, so recovery must behave
identically whichever logging path produced the log.
"""

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.recovery import replay
from repro.oodb.storage.wal import FSYNC_POLICIES, LogRecordType, WriteAheadLog
from repro.obs.metrics import pipeline_stats, reset_pipeline_stats


class Doc(Persistent):
    def __init__(self, body=""):
        super().__init__()
        self.body = body


def _simulate_crash(db: Database) -> None:
    """Close file handles without checkpoint — as a crash would."""
    assert db._heap is not None and db._wal is not None
    db._pool.flush_all()
    db._wal.flush(force_sync=True)
    db._heap._pool = None  # ensure no further use
    db._closed = True
    db._wal._file.close()


class TestLogTransaction:
    def test_replays_like_individual_appends(self, tmp_path):
        grouped = WriteAheadLog(tmp_path / "grouped.log", sync=False)
        grouped.log_transaction(1, [(5, None, {"v": 1}), (6, {"v": 0}, None)])
        separate = WriteAheadLog(tmp_path / "separate.log", sync=False)
        separate.log_begin(1)
        separate.log_update(1, 5, None, {"v": 1})
        separate.log_update(1, 6, {"v": 0}, None)
        separate.log_commit(1)

        def applied(wal):
            out = []
            replay(wal, lambda oid, redo: out.append((oid, redo)))
            return out

        assert applied(grouped) == applied(separate) == [(5, {"v": 1}), (6, None)]
        grouped.close()
        separate.close()

    def test_pre_encoded_redo_round_trips(self, tmp_path):
        # The commit path hands the WAL an already-encoded record string;
        # the reader must see the same dict as for a dict-valued redo.
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_transaction(3, [(9, {"old": 1}, '{"attrs":{"n":2},"class":"Doc"}')])
        records = list(wal.records())
        update = [r for r in records if r.type is LogRecordType.UPDATE][0]
        assert update.oid == 9
        assert update.undo == {"old": 1}
        assert update.redo == {"attrs": {"n": 2}, "class": "Doc"}
        wal.close()

    def test_counts_group_commit_stats(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        reset_pipeline_stats()
        wal.log_transaction(1, [(5, None, {"v": 1}), (6, None, {"v": 2})])
        assert pipeline_stats.group_commits == 1
        assert pipeline_stats.group_commit_records == 4  # BEGIN + 2 + COMMIT
        wal.close()

    def test_empty_transaction_still_brackets(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_transaction(1, [])
        types = [r.type for r in wal.records()]
        assert types == [LogRecordType.BEGIN, LogRecordType.COMMIT]
        wal.close()


class TestBufferedAppends:
    def test_records_reader_sees_buffered_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(7)  # buffered, not yet flushed
        assert [r.txn_id for r in wal.records()] == [7]
        wal.close()

    def test_truncate_discards_buffered_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(7)
        wal.truncate()
        assert list(wal.records()) == []
        assert wal.tail_size() == 0
        wal.close()

    def test_lsns_account_for_buffered_entries(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        first = wal.log_begin(1)
        second = wal.log_begin(2)
        assert first == 0
        assert second > first
        lsns = [r.lsn for r in wal.records()]
        assert lsns == [first, second]
        wal.close()


class TestFsyncPolicy:
    def test_policies_enumerated(self):
        assert set(FSYNC_POLICIES) == {"commit", "always", "never"}

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "w.log", fsync_policy="sometimes")

    def test_sync_flag_maps_to_policy(self, tmp_path):
        assert WriteAheadLog(tmp_path / "a.log", sync=True).fsync_policy == "commit"
        assert WriteAheadLog(tmp_path / "b.log", sync=False).fsync_policy == "never"

    def test_never_policy_skips_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", fsync_policy="never")
        reset_pipeline_stats()
        wal.log_transaction(1, [(5, None, {"v": 1})])
        assert pipeline_stats.wal_syncs == 0
        wal.close()

    def test_commit_policy_syncs_once_per_transaction(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", fsync_policy="commit")
        reset_pipeline_stats()
        wal.log_transaction(1, [(5, None, {"v": 1}), (6, None, {"v": 2})])
        assert pipeline_stats.wal_syncs == 1
        wal.close()

    def test_always_policy_syncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", fsync_policy="always")
        reset_pipeline_stats()
        wal.log_begin(1)
        wal.log_update(1, 5, None, {"v": 1})
        assert pipeline_stats.wal_syncs == 2
        wal.close()

    def test_database_accepts_fsync_policy(self, tmp_path):
        db = Database(str(tmp_path / "db"), fsync="never")
        assert db._wal is not None
        assert db._wal.fsync_policy == "never"
        with db.transaction():
            db.add(Doc("x"))
        db.close()


@pytest.mark.parametrize("group_commit", [True, False])
class TestRecoveryBothPaths:
    def test_committed_work_survives_crash(self, tmp_path, group_commit):
        path = str(tmp_path / "db")
        db = Database(path, sync=False, group_commit=group_commit)
        with db.transaction():
            doc = Doc("hello")
            db.add(doc)
            db.set_root("doc", doc)
        oid = doc.oid
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        restored = db2.fetch(oid)
        assert restored.body == "hello"
        assert db2.get_root("doc") is restored
        db2.close()

    def test_update_and_delete_survive_crash(self, tmp_path, group_commit):
        path = str(tmp_path / "db")
        db = Database(path, sync=False, group_commit=group_commit)
        with db.transaction():
            keep = Doc("v1")
            gone = Doc("bye")
            db.add(keep)
            db.add(gone)
            db.set_root("keep", keep)
        db.checkpoint()
        keep_oid, gone_oid = keep.oid, gone.oid
        with db.transaction():
            keep.body = "v2"
            db.delete(gone)
        _simulate_crash(db)

        from repro.oodb import ObjectNotFound

        db2 = Database(path, sync=False)
        assert db2.fetch(keep_oid).body == "v2"
        with pytest.raises(ObjectNotFound):
            db2.fetch(gone_oid)
        db2.close()

    def test_reopen_after_clean_close(self, tmp_path, group_commit):
        path = str(tmp_path / "db")
        db = Database(path, sync=False, group_commit=group_commit)
        with db.transaction():
            db.set_root("d", Doc("x"))
        db.close()

        db2 = Database(path, sync=False)
        assert db2.last_recovery is not None
        assert db2.last_recovery.clean
        assert db2.get_root("d").body == "x"
        db2.close()
