"""Tests for the extendible hash index: splits, directory doubling,
duplicates, uniqueness, deletion, and a randomized dict-oracle check."""

import random

import pytest

from repro.oodb.errors import DuplicateKey
from repro.oodb.hashindex import _MAX_DEPTH, ExtendibleHashIndex


class TestBasics:
    def test_empty(self):
        idx = ExtendibleHashIndex()
        assert len(idx) == 0
        assert idx.key_count == 0
        assert idx.search("missing") == []
        assert idx.count_key("missing") == 0
        assert "missing" not in idx
        idx.check_invariants()

    def test_insert_and_search(self):
        idx = ExtendibleHashIndex()
        idx.insert("a", 1)
        idx.insert("b", 2)
        assert idx.search("a") == [1]
        assert idx.search("b") == [2]
        assert "a" in idx and "c" not in idx
        assert len(idx) == 2 and idx.key_count == 2
        idx.check_invariants()

    def test_duplicate_keys_chain(self):
        idx = ExtendibleHashIndex()
        for value in range(5):
            idx.insert("k", value)
        assert sorted(idx.search("k")) == [0, 1, 2, 3, 4]
        assert idx.count_key("k") == 5
        assert len(idx) == 5 and idx.key_count == 1
        idx.check_invariants()

    def test_unique_rejects_duplicates(self):
        idx = ExtendibleHashIndex(unique=True)
        idx.insert("k", 1)
        with pytest.raises(DuplicateKey):
            idx.insert("k", 2)
        assert idx.search("k") == [1]

    def test_mixed_key_types(self):
        idx = ExtendibleHashIndex()
        idx.insert(1, "int")
        idx.insert(1.5, "float")
        idx.insert("one", "str")
        idx.insert((1, 2), "tuple")
        assert idx.search(1) == ["int"]
        assert idx.search((1, 2)) == ["tuple"]
        idx.check_invariants()


class TestSplitting:
    def test_bucket_split_doubles_directory(self):
        idx = ExtendibleHashIndex(bucket_capacity=2)
        assert idx.global_depth == 0
        for i in range(50):
            idx.insert(i, i)
        assert idx.global_depth >= 1
        stats = idx.stats()
        assert stats.directory_size == 1 << idx.global_depth
        assert stats.bucket_count > 1
        for i in range(50):
            assert idx.search(i) == [i]
        idx.check_invariants()

    def test_duplicates_do_not_force_splits(self):
        # Capacity counts distinct keys, so one hot key never doubles
        # the directory.
        idx = ExtendibleHashIndex(bucket_capacity=2)
        for i in range(100):
            idx.insert("hot", i)
        assert idx.global_depth == 0
        assert idx.count_key("hot") == 100
        idx.check_invariants()

    def test_depth_ceiling_overfills_instead_of_looping(self):
        # hash(int) == int for small ints, so keys congruent modulo
        # 2**_MAX_DEPTH collide in their low hash bits at every depth:
        # the bucket must overfill at the ceiling, not split forever.
        idx = ExtendibleHashIndex(bucket_capacity=1)
        keys = [5, 5 + (1 << _MAX_DEPTH), 5 + (2 << _MAX_DEPTH)]
        for key in keys:
            idx.insert(key, key)
        assert idx.global_depth == _MAX_DEPTH
        for key in keys:
            assert idx.search(key) == [key]
        stats = idx.stats()
        assert stats.max_bucket_keys == len(keys)
        idx.check_invariants()

    def test_stats_shape(self):
        idx = ExtendibleHashIndex(bucket_capacity=4)
        for i in range(40):
            idx.insert(i, i)
        stats = idx.stats()
        assert stats.entries == 40
        assert stats.distinct_keys == 40
        assert stats.bucket_capacity == 4
        assert 0.0 < stats.avg_bucket_fill <= 1.0
        assert stats.directory_size == 1 << stats.global_depth


class TestDeletion:
    def test_delete_single_value(self):
        idx = ExtendibleHashIndex()
        idx.insert("k", 1)
        idx.insert("k", 2)
        assert idx.delete("k", 1)
        assert idx.search("k") == [2]
        assert len(idx) == 1 and idx.key_count == 1
        idx.check_invariants()

    def test_delete_last_value_removes_key(self):
        idx = ExtendibleHashIndex()
        idx.insert("k", 1)
        assert idx.delete("k", 1)
        assert "k" not in idx
        assert idx.key_count == 0
        idx.check_invariants()

    def test_delete_whole_key(self):
        idx = ExtendibleHashIndex()
        for value in range(4):
            idx.insert("k", value)
        assert idx.delete("k")
        assert len(idx) == 0 and idx.key_count == 0

    def test_delete_missing_returns_false(self):
        idx = ExtendibleHashIndex()
        idx.insert("k", 1)
        assert not idx.delete("nope")
        assert not idx.delete("k", 99)
        assert idx.search("k") == [1]

    def test_clear(self):
        idx = ExtendibleHashIndex(bucket_capacity=2)
        for i in range(30):
            idx.insert(i, i)
        idx.clear()
        assert len(idx) == 0 and idx.global_depth == 0
        idx.check_invariants()
        idx.insert("again", 1)
        assert idx.search("again") == [1]


class TestIteration:
    def test_items_and_keys_visit_each_once(self):
        idx = ExtendibleHashIndex(bucket_capacity=2)
        expected = set()
        for i in range(40):
            idx.insert(i % 10, i)
            expected.add((i % 10, i))
        assert set(idx.items()) == expected
        assert sorted(idx.keys()) == list(range(10))


class TestOracle:
    def test_randomized_against_dict(self):
        rng = random.Random(0xFEED)
        idx = ExtendibleHashIndex(bucket_capacity=3)
        oracle: dict[int, list[int]] = {}
        for step in range(3000):
            key = rng.randrange(60)
            action = rng.random()
            if action < 0.6:
                value = rng.randrange(1000)
                idx.insert(key, value)
                oracle.setdefault(key, []).append(value)
            elif action < 0.85:
                values = oracle.get(key)
                value = rng.choice(values) if values else -1
                assert idx.delete(key, value) == bool(values)
                if values:
                    values.remove(value)
                    if not values:
                        del oracle[key]
            else:
                del_all = idx.delete(key)
                assert del_all == (key in oracle)
                oracle.pop(key, None)
            if step % 500 == 0:
                idx.check_invariants()
        idx.check_invariants()
        assert idx.key_count == len(oracle)
        assert len(idx) == sum(len(v) for v in oracle.values())
        for key in range(60):
            assert sorted(idx.search(key)) == sorted(oracle.get(key, []))
