"""Tests for heap files."""

import pytest

from repro.oodb.buffer import BufferPool
from repro.oodb.errors import StorageError
from repro.oodb.storage.heap import HeapFile, RecordId


@pytest.fixture
def heap(tmp_path):
    pool = BufferPool(capacity=8)
    heap_file = HeapFile(tmp_path / "test.heap", pool)
    yield heap_file
    heap_file.close()


class TestHeapBasics:
    def test_insert_read(self, heap):
        rid = heap.insert(b"payload")
        assert heap.read(rid) == b"payload"

    def test_update_in_place_keeps_rid(self, heap):
        rid = heap.insert(b"v1")
        new_rid = heap.update(rid, b"v2")
        assert new_rid == rid
        assert heap.read(rid) == b"v2"

    def test_update_relocates_when_page_full(self, heap):
        rid = heap.insert(b"tiny")
        # Fill the page so the grown record cannot stay.
        while True:
            try:
                heap.insert(b"f" * 1000)
            except Exception:
                break
            if heap.page_count > 1:
                break
        new_rid = heap.update(rid, b"g" * 3500)
        assert heap.read(new_rid) == b"g" * 3500

    def test_delete(self, heap):
        rid = heap.insert(b"bye")
        assert heap.delete(rid) == b"bye"
        with pytest.raises(Exception):
            heap.read(rid)

    def test_scan_returns_all_live(self, heap):
        payloads = {f"rec-{i}".encode() for i in range(50)}
        rids = {heap.insert(p): p for p in payloads}
        victim = next(iter(rids))
        heap.delete(victim)
        scanned = {p for _rid, p in heap.scan()}
        assert scanned == payloads - {rids[victim]}

    def test_record_count(self, heap):
        for i in range(10):
            heap.insert(f"{i}".encode())
        assert heap.record_count() == 10

    def test_grows_across_pages(self, heap):
        for _ in range(20):
            heap.insert(b"x" * 1000)
        assert heap.page_count > 1

    def test_bad_rid_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.read(RecordId(99, 0))


class TestOverflowChains:
    def test_oversized_roundtrip(self, heap):
        payload = bytes(range(256)) * 200  # ~51 KB, spans many pages
        rid = heap.insert(payload)
        assert heap.read(rid) == payload

    def test_scan_skips_parts(self, heap):
        big = b"B" * 20_000
        small = b"s"
        heap.insert(big)
        heap.insert(small)
        scanned = sorted(p for _rid, p in heap.scan())
        assert scanned == sorted([big, small])
        assert heap.record_count() == 2

    def test_delete_frees_chain(self, heap):
        rid = heap.insert(b"D" * 30_000)
        pages_with_data = heap.page_count
        assert heap.delete(rid) == b"D" * 30_000
        # All freed space is reusable: the same insert fits again
        rid2 = heap.insert(b"E" * 30_000)
        assert heap.page_count == pages_with_data
        assert heap.read(rid2) == b"E" * 30_000

    def test_update_grow_from_plain_to_overflow(self, heap):
        rid = heap.insert(b"small")
        new_rid = heap.update(rid, b"G" * 15_000)
        assert heap.read(new_rid) == b"G" * 15_000

    def test_update_shrink_from_overflow_to_plain(self, heap):
        rid = heap.insert(b"H" * 15_000)
        new_rid = heap.update(rid, b"tiny")
        assert heap.read(new_rid) == b"tiny"
        assert heap.record_count() == 1

    def test_update_overflow_to_overflow(self, heap):
        rid = heap.insert(b"1" * 12_000)
        new_rid = heap.update(rid, b"2" * 18_000)
        assert heap.read(new_rid) == b"2" * 18_000

    def test_overflow_survives_reopen(self, tmp_path):
        from repro.oodb.buffer import BufferPool
        from repro.oodb.storage.heap import HeapFile

        payload = b"P" * 25_000
        heap = HeapFile(tmp_path / "ovf.heap", BufferPool(capacity=4))
        rid = heap.insert(payload)
        heap.close()
        heap2 = HeapFile(tmp_path / "ovf.heap", BufferPool(capacity=4))
        assert heap2.read(rid) == payload
        heap2.close()

    def test_reading_a_part_rid_rejected(self, heap):
        heap.insert(b"Q" * 10_000)
        # Find a part record: scan raw pages for the part tag.
        from repro.oodb.storage.heap import _TAG_PART

        part_rid = None
        for page_id in range(heap.page_count):
            page = heap._pool.get(heap.path, page_id)
            for slot, raw in page.records():
                if raw[0] == _TAG_PART:
                    part_rid = RecordId(page_id, slot)
                    break
        assert part_rid is not None
        with pytest.raises(StorageError):
            heap.read(part_rid)

    def test_beyond_max_object_size_rejected(self, heap):
        from repro.oodb.storage.heap import MAX_OBJECT_SIZE

        with pytest.raises(StorageError):
            heap.insert(b"x" * (MAX_OBJECT_SIZE + 1))

    def test_boundary_sizes(self, heap):
        from repro.oodb.storage.pages import MAX_RECORD_SIZE

        for size in (MAX_RECORD_SIZE - 1, MAX_RECORD_SIZE, MAX_RECORD_SIZE + 1):
            rid = heap.insert(b"b" * size)
            assert len(heap.read(rid)) == size


class TestHeapPersistence:
    def test_reopen_preserves_records(self, tmp_path):
        pool = BufferPool(capacity=4)
        heap = HeapFile(tmp_path / "p.heap", pool)
        rids = [heap.insert(f"persisted-{i}".encode()) for i in range(30)]
        heap.close()

        heap2 = HeapFile(tmp_path / "p.heap", BufferPool(capacity=4))
        for i, rid in enumerate(rids):
            assert heap2.read(rid) == f"persisted-{i}".encode()
        heap2.close()

    def test_reopen_fills_freed_space(self, tmp_path):
        heap = HeapFile(tmp_path / "q.heap", BufferPool())
        rid = heap.insert(b"x" * 2000)
        heap.delete(rid)
        pages_before = heap.page_count
        heap.close()

        heap2 = HeapFile(tmp_path / "q.heap", BufferPool())
        heap2.insert(b"y" * 2000)
        assert heap2.page_count == pages_before
        heap2.close()

    def test_corrupt_size_rejected(self, tmp_path):
        path = tmp_path / "bad.heap"
        path.write_bytes(b"not-a-page-multiple")
        with pytest.raises(StorageError):
            HeapFile(path, BufferPool())


class TestRecordId:
    def test_ordering(self):
        assert RecordId(0, 1) < RecordId(0, 2) < RecordId(1, 0)

    def test_str_parse_roundtrip(self):
        rid = RecordId(3, 7)
        assert RecordId.parse(str(rid)) == rid

    def test_hashable(self):
        assert {RecordId(1, 2): "a"}[RecordId(1, 2)] == "a"
