"""Tests for the B-tree and the index manager."""

import random

import pytest

from repro.oodb import Persistent
from repro.oodb.errors import DuplicateKey, QueryError
from repro.oodb.index import BTree, IndexDefinition, IndexManager
from repro.oodb.oid import Oid


class TestBTreeBasics:
    def test_insert_search(self):
        tree = BTree()
        tree.insert(5, "five")
        assert tree.search(5) == ["five"]
        assert tree.search(6) == []

    def test_duplicates_accumulate(self):
        tree = BTree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.search("k") == [1, 2]
        assert len(tree) == 2

    def test_unique_rejects_duplicates(self):
        tree = BTree(unique=True)
        tree.insert("k", 1)
        with pytest.raises(DuplicateKey):
            tree.insert("k", 2)

    def test_contains(self):
        tree = BTree()
        tree.insert(1, "x")
        assert 1 in tree
        assert 2 not in tree

    def test_items_sorted(self):
        tree = BTree(order=3)
        keys = list(range(100))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        assert [k for k, _v in tree.items()] == list(range(100))

    def test_range_query(self):
        tree = BTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        assert [k for k, _ in tree.range(10, 15)] == [10, 11, 12, 13, 14, 15]
        assert [k for k, _ in tree.range(10, 15, inclusive=(False, False))] == [
            11, 12, 13, 14,
        ]
        assert [k for k, _ in tree.range(45, None)] == [45, 46, 47, 48, 49]
        assert [k for k, _ in tree.range(None, 3)] == [0, 1, 2, 3]

    def test_bad_order(self):
        with pytest.raises(ValueError):
            BTree(order=1)


class TestBTreeDeletion:
    def test_delete_leaf_key(self):
        tree = BTree(order=2)
        for key in range(20):
            tree.insert(key, key)
        assert tree.delete(7)
        assert tree.search(7) == []
        assert len(tree) == 19
        tree.check_invariants()

    def test_delete_specific_value(self):
        tree = BTree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.delete("k", 1)
        assert tree.search("k") == [2]

    def test_delete_missing_returns_false(self):
        tree = BTree()
        tree.insert(1, "a")
        assert not tree.delete(99)
        assert not tree.delete(1, "not-there")

    def test_delete_everything(self):
        tree = BTree(order=2)
        keys = list(range(64))
        random.Random(5).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        random.Random(6).shuffle(keys)
        for key in keys:
            assert tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_interleaved_insert_delete(self):
        tree = BTree(order=3)
        rng = random.Random(9)
        shadow: dict[int, list[int]] = {}
        for step in range(2000):
            key = rng.randrange(200)
            if rng.random() < 0.6:
                tree.insert(key, step)
                shadow.setdefault(key, []).append(step)
            elif key in shadow and shadow[key]:
                value = shadow[key].pop(0)
                assert tree.delete(key, value)
                if not shadow[key]:
                    del shadow[key]
        tree.check_invariants()
        for key, values in shadow.items():
            assert tree.search(key) == values
        assert len(tree) == sum(len(v) for v in shadow.values())


class TestBTreeCounting:
    def make_tree(self, order=3):
        tree = BTree(order=order)
        entries = []
        rng = random.Random(17)
        for step in range(500):
            key = rng.randrange(80)
            tree.insert(key, step)
            entries.append(key)
        return tree, entries

    def test_count_key(self):
        tree, entries = self.make_tree()
        for key in (0, 13, 79, 200):
            assert tree.count_key(key) == entries.count(key)

    @pytest.mark.parametrize(
        "inclusive", [(True, True), (True, False), (False, True), (False, False)]
    )
    def test_count_range_matches_walk(self, inclusive):
        tree, _entries = self.make_tree()
        for low, high in [(None, None), (10, 50), (None, 40), (25, None), (30, 30)]:
            walked = sum(1 for _ in tree.range(low, high, inclusive=inclusive))
            assert tree.count_range(low, high, inclusive=inclusive) == walked

    @pytest.mark.parametrize(
        "inclusive", [(True, True), (True, False), (False, True), (False, False)]
    )
    def test_range_values_matches_lazy_range(self, inclusive):
        tree, _entries = self.make_tree()
        for low, high in [(None, None), (10, 50), (None, 40), (25, None), (30, 30)]:
            lazy = [v for _k, v in tree.range(low, high, inclusive=inclusive)]
            assert tree.range_values(low, high, inclusive=inclusive) == lazy

    def test_counts_survive_deletions(self):
        """Cached subtree counts must be invalidated by every delete shape."""
        by_key: dict[int, list[int]] = {}
        tree = BTree(order=3)
        _tree, entries = self.make_tree()
        for step, key in enumerate(entries):
            tree.insert(key, step)
            by_key.setdefault(key, []).append(step)
        tree.count_range(None, None)  # populate the subtree caches
        for key in list(by_key)[::2]:
            for value in by_key.pop(key):
                assert tree.delete(key, value)
        remaining = sum(len(v) for v in by_key.values())
        assert tree.count_range(None, None) == remaining
        assert tree.count_range(20, 60) == sum(
            len(v) for k, v in by_key.items() if 20 <= k <= 60
        )
        tree.check_invariants()

    def test_estimate_range_count_brackets_truth(self):
        tree, _entries = self.make_tree(order=16)
        for low, high in [(None, 40), (10, 50), (60, None)]:
            exact = tree.count_range(low, high)
            estimate = tree.estimate_range_count(low, high)
            assert 0 <= estimate <= len(tree)
            # The estimate ranks access paths; it should be in the right
            # ballpark, not exact.
            assert abs(estimate - exact) <= max(25, exact)


class TestIndexManager:
    @pytest.fixture
    def manager(self):
        # A tiny fake class hierarchy: Base covers Sub.
        families = {"Base": {"Base", "Sub"}, "Sub": {"Sub"}}
        return IndexManager(lambda name: families.get(name, {name}))

    def test_create_and_find(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        manager.on_add("Base", Oid(1), {"salary": 100})
        manager.on_add("Base", Oid(2), {"salary": 200})
        assert manager.find_eq("Base", "salary", 100) == [Oid(1)]

    def test_subclass_instances_indexed(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        manager.on_add("Sub", Oid(3), {"salary": 300})
        assert manager.find_eq("Base", "salary", 300) == [Oid(3)]

    def test_update_moves_key(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        manager.on_add("Base", Oid(1), {"salary": 100})
        manager.on_update("Base", Oid(1), "salary", 150)
        assert manager.find_eq("Base", "salary", 100) == []
        assert manager.find_eq("Base", "salary", 150) == [Oid(1)]

    def test_remove(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        manager.on_add("Base", Oid(1), {"salary": 100})
        manager.on_remove("Base", Oid(1))
        assert manager.find_eq("Base", "salary", 100) == []

    def test_range(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        for i in range(10):
            manager.on_add("Base", Oid(i + 1), {"salary": i * 10})
        assert manager.find_range("Base", "salary", 20, 40) == [
            Oid(3), Oid(4), Oid(5),
        ]

    def test_reindex(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        manager.on_add("Base", Oid(1), {"salary": 1})
        manager.reindex("Base", Oid(1), {"salary": 2})
        assert manager.find_eq("Base", "salary", 2) == [Oid(1)]

    def test_duplicate_index_rejected(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        with pytest.raises(QueryError):
            manager.create(IndexDefinition("Base", "salary"))

    def test_missing_index_rejected(self, manager):
        with pytest.raises(QueryError):
            manager.find_eq("Base", "nope", 1)

    def test_drop(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        manager.drop("Base", "salary")
        with pytest.raises(QueryError):
            manager.find_eq("Base", "salary", 1)

    def test_unrelated_attribute_ignored(self, manager):
        manager.create(IndexDefinition("Base", "salary"))
        manager.on_add("Base", Oid(1), {"salary": 5})
        manager.on_update("Base", Oid(1), "name", "x")  # not indexed
        assert manager.find_eq("Base", "salary", 5) == [Oid(1)]


class IndexedEmp(Persistent):
    def __init__(self, name, salary):
        super().__init__()
        self.name = name
        self.salary = salary


class TestDatabaseIndexIntegration:
    def test_index_built_from_existing_extent(self, mem_db):
        for i in range(5):
            mem_db.add(IndexedEmp(f"e{i}", i * 10))
        mem_db.commit()
        mem_db.create_index(IndexedEmp, "salary")
        hits = mem_db.query(IndexedEmp).where_eq("salary", 30).all()
        assert [e.name for e in hits] == ["e3"]

    def test_index_follows_updates(self, mem_db):
        emp = IndexedEmp("e", 10)
        mem_db.add(emp)
        mem_db.commit()
        mem_db.create_index(IndexedEmp, "salary")
        emp.salary = 20
        assert mem_db.query(IndexedEmp).where_eq("salary", 20).count() == 1
        assert mem_db.query(IndexedEmp).where_eq("salary", 10).count() == 0

    def test_index_rolls_back_with_txn(self, mem_db):
        emp = IndexedEmp("e", 10)
        mem_db.add(emp)
        mem_db.commit()
        mem_db.create_index(IndexedEmp, "salary")
        try:
            with mem_db.transaction():
                emp.salary = 99
                raise RuntimeError
        except RuntimeError:
            pass
        assert mem_db.query(IndexedEmp).where_eq("salary", 10).count() == 1
        assert mem_db.query(IndexedEmp).where_eq("salary", 99).count() == 0
