"""The runtime lock-order sanitizer (repro.oodb.lockdep).

Covers the recorder itself (edges, warn-once, export), the
:class:`~repro.oodb.locks.LockManager` wiring (disabled path untouched,
upgrade grants skipped), the real two-thread seeded inversion over a
``Database(locking=True)`` — including the ``lock_order_inversion``
sysmon signal, the flight-recorder ``lock`` entry and the metrics
counter — and the static/runtime cross-validation: every runtime
inversion the sanitizer observes for the racy fixture's class pair is
predicted by the static SA101 order relation.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import analyze, static_order_edges
from repro.obs.flight import flight_recorder
from repro.obs.metrics import metrics
from repro.obs.signals import engine_signals
from repro.obs.sysmon import SystemMonitor
from repro.oodb import Database, Persistent
from repro.oodb.lockdep import LockOrderRecorder
from repro.oodb.locks import LockManager, LockMode
from repro.oodb.oid import Oid
from repro.oodb.schema import ClassRegistry


@pytest.fixture
def registry():
    return ClassRegistry()


@pytest.fixture
def locked_db(tmp_path, registry):
    db = Database(str(tmp_path / "db"), registry=registry, locking=True)
    yield db
    db.close()


def _keyer(oid: Oid) -> str:
    return "even" if int(str(oid).lstrip("@")) % 2 == 0 else "odd"


class TestRecorder:
    def test_edges_accumulate_at_class_granularity(self):
        recorder = LockOrderRecorder(_keyer)
        assert recorder.note_acquire(1, Oid(2), {Oid(1)}) == []
        assert recorder.edges() == {("odd", "even"): 1}
        # Same class while holding same class: no self-edge.
        assert recorder.note_acquire(1, Oid(4), {Oid(2)}) == []
        assert recorder.edges() == {("odd", "even"): 1}

    def test_reverse_edge_is_an_inversion_reported_once(self):
        recorder = LockOrderRecorder(_keyer)
        recorder.note_acquire(1, Oid(2), {Oid(1)})
        found = recorder.note_acquire(2, Oid(3), {Oid(4)})
        assert found == [{"first": "even", "second": "odd", "txn": 2}]
        # The same pair again, either direction: warn-once.
        assert recorder.note_acquire(3, Oid(5), {Oid(6)}) == []
        assert recorder.note_acquire(4, Oid(6), {Oid(5)}) == []
        assert len(recorder.inversions()) == 1

    def test_export_shape(self):
        recorder = LockOrderRecorder(_keyer)
        recorder.note_acquire(1, Oid(2), {Oid(1)})
        recorder.note_acquire(2, Oid(3), {Oid(4)})
        exported = recorder.export()
        assert exported["edges"] == [
            {"src": "even", "dst": "odd", "count": 1},
            {"src": "odd", "dst": "even", "count": 1},
        ]
        assert exported["inversions"] == [
            {"first": "even", "second": "odd", "txn": 2}
        ]
        assert recorder.stats() == {"order_edges": 2, "inversions": 1}

    def test_without_keyer_every_oid_is_its_own_class(self):
        recorder = LockOrderRecorder()
        recorder.note_acquire(1, Oid(2), {Oid(1)})
        assert recorder.edges() == {("oid:@1", "oid:@2"): 1}


class TestLockManagerWiring:
    def test_disabled_manager_records_nothing(self):
        locks = LockManager()
        locks.acquire(1, Oid(1), LockMode.EXCLUSIVE)
        locks.acquire(1, Oid(2), LockMode.EXCLUSIVE)
        assert locks.lockdep is None

    def test_enable_is_idempotent_and_disable_detaches(self):
        locks = LockManager()
        recorder = locks.enable_lockdep(_keyer)
        assert locks.enable_lockdep(_keyer) is recorder
        assert locks.lockdep is recorder
        locks.disable_lockdep()
        assert locks.lockdep is None

    def test_opposite_orders_within_manager(self):
        locks = LockManager()
        recorder = locks.enable_lockdep(_keyer)
        locks.acquire(1, Oid(1), LockMode.EXCLUSIVE)   # odd
        locks.acquire(1, Oid(2), LockMode.EXCLUSIVE)   # odd -> even
        locks.release_all(1)
        locks.acquire(2, Oid(4), LockMode.EXCLUSIVE)   # even
        locks.acquire(2, Oid(3), LockMode.EXCLUSIVE)   # even -> odd
        locks.release_all(2)
        assert len(recorder.inversions()) == 1

    def test_upgrade_is_not_a_new_acquisition(self):
        locks = LockManager()
        recorder = locks.enable_lockdep(_keyer)
        locks.acquire(1, Oid(1), LockMode.EXCLUSIVE)
        locks.acquire(1, Oid(2), LockMode.SHARED)
        before = recorder.edges()
        locks.acquire(1, Oid(2), LockMode.EXCLUSIVE)   # upgrade, no edge
        assert recorder.edges() == before

    def test_stats_counts_held_and_waiting(self):
        locks = LockManager()
        locks.acquire(1, Oid(1), LockMode.EXCLUSIVE)
        locks.acquire(1, Oid(2), LockMode.SHARED)
        stats = locks.stats()
        assert stats["locked_oids"] == 2
        assert stats["held_locks"] == 2
        assert stats["holding_txns"] == 1
        assert stats["waiting_txns"] == 0
        locks.release_all(1)
        assert locks.stats()["held_locks"] == 0


class TestTwoThreadInversion:
    def test_seeded_inversion_signals_flight_and_metrics(
        self, locked_db, registry
    ):
        """Two real threads lock the same class pair in opposite orders."""

        class Alpha(Persistent, registry=registry):
            def __init__(self, n: int = 0) -> None:
                super().__init__()
                self.n = n

        class Beta(Persistent, registry=registry):
            def __init__(self, n: int = 0) -> None:
                super().__init__()
                self.n = n

        db = locked_db
        with db.transaction():
            oid_a = db.add(Alpha())
            oid_b = db.add(Beta())

        recorder = db.enable_lockdep()
        monitor = SystemMonitor().attach()
        counter_before = metrics.counter("lockdep.inversions").value
        first_done = threading.Event()
        errors: list[BaseException] = []

        def alpha_then_beta() -> None:
            try:
                with db.transaction():
                    db.fetch(oid_a).n += 1
                    db.fetch(oid_b).n += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                first_done.set()

        def beta_then_alpha() -> None:
            try:
                first_done.wait(10.0)
                with db.transaction():
                    db.fetch(oid_b).n += 1
                    db.fetch(oid_a).n += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=alpha_then_beta, name="ab"),
                threading.Thread(target=beta_then_alpha, name="ba"),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(15.0)
            assert not any(t.is_alive() for t in threads)
            assert errors == []

            inversions = recorder.inversions()
            assert len(inversions) == 1
            pair = {inversions[0]["first"], inversions[0]["second"]}
            assert pair == {"Alpha", "Beta"}

            # Sysmon turned the signal into a monitor event.
            assert monitor.lock_inversions == 1
            # The metrics counter moved.
            assert (
                metrics.counter("lockdep.inversions").value
                == counter_before + 1
            )
            # The flight recorder holds the evidence.
            lock_entries = [
                e
                for e in flight_recorder.snapshot()
                if e["kind"] == "lock" and "Alpha" in e["detail"]
            ]
            assert lock_entries, "no flight entry for the inversion"
        finally:
            monitor.detach()
            db.disable_lockdep()

    def test_same_order_threads_report_nothing(self, locked_db, registry):
        class Gamma(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.n = 0

        class Delta(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.n = 0

        db = locked_db
        with db.transaction():
            oid_g = db.add(Gamma())
            oid_d = db.add(Delta())

        recorder = db.enable_lockdep()
        try:
            def worker() -> None:
                with db.transaction():
                    db.fetch(oid_g).n += 1
                    db.fetch(oid_d).n += 1

            threads = [
                threading.Thread(target=worker) for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(15.0)
            assert recorder.inversions() == []
            assert ("Gamma", "Delta") in recorder.edges()
        finally:
            db.disable_lockdep()


class TestStaticRuntimeCrossValidation:
    def test_static_sa101_edges_cover_observed_inversion(
        self, locked_db, registry
    ):
        """The racy fixture's SA101 order relation predicts the runtime
        inversion the sanitizer observes for the same class pair."""
        from tests.analysis.fixtures import racy_payroll

        class Account(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.n = 0

        class Payroll(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.n = 0

        db = locked_db
        with db.transaction():
            oid_a = db.add(Account())
            oid_p = db.add(Payroll())

        recorder = db.enable_lockdep()
        try:
            with db.transaction():
                db.fetch(oid_a).n += 1
                db.fetch(oid_p).n += 1
            with db.transaction():
                db.fetch(oid_p).n += 1
                db.fetch(oid_a).n += 1
        finally:
            db.disable_lockdep()

        observed = recorder.inversions()
        assert len(observed) == 1

        report = analyze(
            racy_payroll.build_system(),
            registry=racy_payroll.registry,
            concurrency=True,
        )
        static = {
            (a.lower(), b.lower())
            for a, b in static_order_edges(
                report.graph, racy_payroll.registry
            )
        }
        first = observed[0]["first"].lower()
        second = observed[0]["second"].lower()
        assert (first, second) in static
        assert (second, first) in static


class TestSentinelSurface:
    def test_enable_without_db_raises(self):
        from repro.core import Sentinel

        sentinel = Sentinel(adopt_class_rules=False)
        with pytest.raises(RuntimeError):
            sentinel.enable_lockdep()
        sentinel.disable_lockdep()  # no-op without a database

    def test_enable_through_sentinel(self, tmp_path):
        from repro.core import Sentinel

        sentinel = Sentinel(path=str(tmp_path / "db"))
        try:
            recorder = sentinel.enable_lockdep()
            assert sentinel.db is not None
            assert sentinel.db.locks.lockdep is recorder
            sentinel.disable_lockdep()
            assert sentinel.db.locks.lockdep is None
        finally:
            sentinel.close()
