"""Tests for the lock manager."""

import threading
import time

import pytest

from repro.oodb.errors import DeadlockDetected, LockTimeout
from repro.oodb.locks import LockManager, LockMode
from repro.oodb.oid import Oid


class TestSingleThread:
    def test_acquire_and_hold(self):
        locks = LockManager()
        locks.acquire(1, Oid(5), LockMode.EXCLUSIVE)
        assert locks.holds(1, Oid(5)) is LockMode.EXCLUSIVE

    def test_reacquire_is_noop(self):
        locks = LockManager()
        locks.acquire(1, Oid(5), LockMode.SHARED)
        locks.acquire(1, Oid(5), LockMode.SHARED)
        assert locks.holds(1, Oid(5)) is LockMode.SHARED

    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire(1, Oid(5), LockMode.SHARED)
        locks.acquire(2, Oid(5), LockMode.SHARED)
        assert locks.holds(1, Oid(5)) is LockMode.SHARED
        assert locks.holds(2, Oid(5)) is LockMode.SHARED

    def test_upgrade_shared_to_exclusive(self):
        locks = LockManager()
        locks.acquire(1, Oid(5), LockMode.SHARED)
        locks.acquire(1, Oid(5), LockMode.EXCLUSIVE)
        assert locks.holds(1, Oid(5)) is LockMode.EXCLUSIVE

    def test_exclusive_holder_keeps_lock_on_shared_request(self):
        locks = LockManager()
        locks.acquire(1, Oid(5), LockMode.EXCLUSIVE)
        locks.acquire(1, Oid(5), LockMode.SHARED)  # downgrade request: no-op
        assert locks.holds(1, Oid(5)) is LockMode.EXCLUSIVE

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, Oid(1), LockMode.EXCLUSIVE)
        locks.acquire(1, Oid(2), LockMode.SHARED)
        locks.release_all(1)
        assert locks.holds(1, Oid(1)) is None
        assert locks.held_by(1) == set()

    def test_conflicting_exclusive_times_out(self):
        locks = LockManager(timeout=0.05)
        locks.acquire(1, Oid(5), LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeout):
            locks.acquire(2, Oid(5), LockMode.EXCLUSIVE)

    def test_shared_blocked_by_exclusive(self):
        locks = LockManager(timeout=0.05)
        locks.acquire(1, Oid(5), LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeout):
            locks.acquire(2, Oid(5), LockMode.SHARED)


class TestConcurrency:
    def test_lock_handoff_between_threads(self):
        locks = LockManager(timeout=2.0)
        order = []

        locks.acquire(1, Oid(9), LockMode.EXCLUSIVE)

        def second():
            locks.acquire(2, Oid(9), LockMode.EXCLUSIVE)
            order.append("second-acquired")
            locks.release_all(2)

        thread = threading.Thread(target=second)
        thread.start()
        time.sleep(0.05)
        order.append("first-releasing")
        locks.release_all(1)
        thread.join(timeout=2)
        assert order == ["first-releasing", "second-acquired"]

    def test_deadlock_detected(self):
        locks = LockManager(timeout=5.0)
        locks.acquire(1, Oid(1), LockMode.EXCLUSIVE)
        locks.acquire(2, Oid(2), LockMode.EXCLUSIVE)
        errors = []

        def t1_wants_2():
            try:
                locks.acquire(1, Oid(2), LockMode.EXCLUSIVE)
            except DeadlockDetected as exc:
                errors.append(exc)
                locks.release_all(1)

        thread = threading.Thread(target=t1_wants_2)
        thread.start()
        time.sleep(0.05)
        # txn 2 now wants oid 1, completing the cycle: one side must die.
        try:
            locks.acquire(2, Oid(1), LockMode.EXCLUSIVE)
        except DeadlockDetected as exc:
            errors.append(exc)
            locks.release_all(2)
        thread.join(timeout=2)
        locks.release_all(1)
        locks.release_all(2)
        assert len(errors) >= 1

    def test_many_readers_one_writer(self):
        locks = LockManager(timeout=2.0)
        acquired = []
        barrier = threading.Barrier(4)

        def reader(txn_id):
            barrier.wait()
            locks.acquire(txn_id, Oid(3), LockMode.SHARED)
            acquired.append(txn_id)
            time.sleep(0.02)
            locks.release_all(txn_id)

        readers = [threading.Thread(target=reader, args=(i,)) for i in (1, 2, 3)]
        for t in readers:
            t.start()
        barrier.wait()
        time.sleep(0.01)
        locks.acquire(99, Oid(3), LockMode.EXCLUSIVE)  # waits for readers
        assert len(acquired) == 3
        locks.release_all(99)
        for t in readers:
            t.join(timeout=2)


class TestDatabaseLockingIntegration:
    def test_locking_database_tracks_and_releases(self, tmp_path):
        from repro.oodb import Database, Persistent

        class Item(Persistent):
            def __init__(self):
                super().__init__()
                self.x = 0

        db = Database(str(tmp_path / "db"), locking=True)
        try:
            with db.transaction() as txn:
                item = Item()
                db.add(item)
                item.x = 1
                assert db.locks.holds(txn.id, item.oid) is LockMode.EXCLUSIVE
            # Released at commit.
            assert db.locks.held_by(txn.id) == set()
        finally:
            db.close()
