"""Tests for schema evolution: tolerant decoding and Database.migrate."""

import threading

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.schema import ClassRegistry


class TestTolerantDecoding:
    def test_missing_attribute_uses_class_default(self, tmp_path):
        """Old records decode into new class shapes; class-level defaults
        fill attributes the record predates."""
        registry = ClassRegistry()

        class Doc(Persistent, registry=registry):
            def __init__(self, body):
                super().__init__()
                self.body = body

        path = str(tmp_path / "db")
        db = Database(path, registry=registry)
        db.add(Doc("v1 content"))
        db.commit()
        db.close()

        # "Redefine" the class: a new version with an extra attribute.
        class Doc(Persistent, registry=registry):  # noqa: F811
            _p_class_name = "Doc"
            revision: int = 0  # class-level default for old records

            def __init__(self, body, revision=1):
                super().__init__()
                self.body = body
                self.revision = revision

        db2 = Database(path, registry=registry)
        try:
            old = db2.query("Doc").one()
            assert old.body == "v1 content"
            assert old.revision == 0  # class default, not stored
            assert "revision" not in vars(old)
        finally:
            db2.close()

    def test_extra_stored_attribute_survives(self, tmp_path):
        """Records holding attributes the new class lacks keep them."""
        registry = ClassRegistry()

        class Gadget(Persistent, registry=registry):
            def __init__(self):
                super().__init__()
                self.legacy_field = "old"

        path = str(tmp_path / "db")
        db = Database(path, registry=registry)
        db.add(Gadget())
        db.commit()
        db.close()

        class Gadget(Persistent, registry=registry):  # noqa: F811
            _p_class_name = "Gadget"

            def __init__(self):
                super().__init__()

        db2 = Database(path, registry=registry)
        try:
            assert db2.query("Gadget").one().legacy_field == "old"
        finally:
            db2.close()


class Versioned(Persistent):
    def __init__(self, value=0):
        super().__init__()
        self.value = value


class TestMigrate:
    def test_migrate_all_instances(self, db):
        for i in range(5):
            db.add(Versioned(i))
        db.commit()

        def upgrade(obj):
            obj.value = obj.value * 10
            obj.version = 2

        assert db.migrate(Versioned, upgrade) == 5
        db.evict_cache()
        values = sorted(v.value for v in db.query(Versioned))
        assert values == [0, 10, 20, 30, 40]
        assert all(v.version == 2 for v in db.query(Versioned))

    def test_migrate_is_atomic(self, db):
        for i in range(5):
            db.add(Versioned(i))
        db.commit()

        calls = []

        def failing_upgrade(obj):
            calls.append(obj)
            obj.value += 100
            if len(calls) == 3:
                raise RuntimeError("migration bug")

        with pytest.raises(RuntimeError):
            db.migrate(Versioned, failing_upgrade)
        # Nothing changed: the transaction rolled back.
        assert sorted(v.value for v in db.query(Versioned)) == [0, 1, 2, 3, 4]

    def test_migrate_empty_extent(self, db):
        assert db.migrate(Versioned, lambda obj: None) == 0

    def test_migrate_inside_existing_transaction(self, db):
        db.add(Versioned(1))
        db.commit()
        with db.transaction():
            count = db.migrate(Versioned, lambda o: setattr(o, "value", 9))
            assert count == 1
        assert db.query(Versioned).one().value == 9

    def test_migrate_rule_objects(self, sentinel_db):
        """Rules are objects: they migrate with the same call (§3.4)."""
        from repro.core import Rule

        for i in range(3):
            sentinel_db.create_rule(
                f"m{i}", "end Versioned::poke()", persist=True
            )
        sentinel_db.db.commit()
        count = sentinel_db.db.migrate(
            Rule, lambda rule: setattr(rule, "priority", 7)
        )
        assert count == 3
        assert all(r.priority == 7 for r in sentinel_db.db.query(Rule))


class TestConcurrentTransactions:
    def test_two_threads_serialize_on_locks(self, tmp_path):
        """With locking on, concurrent increments do not lose updates."""
        db = Database(str(tmp_path / "db"), locking=True, sync=False)
        try:
            counter = Versioned(0)
            db.add(counter)
            db.commit()
            errors = []

            def work():
                try:
                    for _ in range(25):
                        with db.transaction():
                            # SELECT FOR UPDATE idiom: serialize the whole
                            # read-modify-write, not just the write.
                            db.lock_for_update(counter)
                            counter.value += 1
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert counter.value == 100
        finally:
            db.close()
