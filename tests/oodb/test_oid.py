"""Tests for OIDs and the allocator."""

import threading

import pytest

from repro.oodb.oid import NULL_OID, Oid, OidAllocator


class TestOid:
    def test_value_roundtrip(self):
        assert Oid(42).value == 42

    def test_equality_and_hash(self):
        assert Oid(7) == Oid(7)
        assert Oid(7) != Oid(8)
        assert hash(Oid(7)) == hash(Oid(7))
        assert {Oid(1): "a"}[Oid(1)] == "a"

    def test_ordering(self):
        assert Oid(1) < Oid(2) < Oid(10)
        assert sorted([Oid(3), Oid(1), Oid(2)]) == [Oid(1), Oid(2), Oid(3)]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Oid(-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            Oid("5")  # type: ignore[arg-type]

    def test_null_oid(self):
        assert NULL_OID.is_null
        assert not Oid(1).is_null

    def test_str_parse_roundtrip(self):
        assert Oid.parse(str(Oid(123))) == Oid(123)
        assert Oid.parse("456") == Oid(456)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Oid(1).value = 2  # type: ignore[misc]


class TestOidAllocator:
    def test_starts_at_one(self):
        assert OidAllocator().allocate() == Oid(1)

    def test_monotonic(self):
        allocator = OidAllocator()
        oids = [allocator.allocate() for _ in range(100)]
        assert oids == sorted(oids)
        assert len(set(oids)) == 100

    def test_allocate_many(self):
        allocator = OidAllocator()
        batch = allocator.allocate_many(10)
        assert len(batch) == 10
        assert allocator.allocate() == Oid(11)

    def test_allocate_many_negative(self):
        with pytest.raises(ValueError):
            OidAllocator().allocate_many(-1)

    def test_reserve_raises_high_water_mark(self):
        allocator = OidAllocator()
        allocator.reserve(Oid(50))
        assert allocator.allocate() == Oid(51)

    def test_reserve_below_mark_is_noop(self):
        allocator = OidAllocator(next_value=100)
        allocator.reserve(Oid(10))
        assert allocator.allocate() == Oid(100)

    def test_snapshot_restore(self):
        allocator = OidAllocator()
        for _ in range(5):
            allocator.allocate()
        restored = OidAllocator.restore(allocator.snapshot())
        assert restored.allocate() == Oid(6)

    def test_bad_start(self):
        with pytest.raises(ValueError):
            OidAllocator(next_value=0)

    def test_iter_protocol(self):
        allocator = OidAllocator()
        stream = iter(allocator)
        assert [next(stream) for _ in range(3)] == [Oid(1), Oid(2), Oid(3)]

    def test_thread_safety_no_duplicates(self):
        allocator = OidAllocator()
        results: list[Oid] = []
        lock = threading.Lock()

        def work():
            local = [allocator.allocate() for _ in range(500)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4000
        assert len(set(results)) == 4000
