"""Tests for slotted pages."""

import pytest

from repro.oodb.errors import ChecksumError, PageError
from repro.oodb.storage.pages import MAX_RECORD_SIZE, PAGE_SIZE, Page


class TestPageBasics:
    def test_insert_read(self):
        page = Page(0)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records_get_distinct_slots(self):
        page = Page(0)
        slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
        assert len(set(slots)) == 10
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"rec{i}".encode()

    def test_insert_marks_dirty(self):
        page = Page(0)
        assert not page.dirty
        page.insert(b"x")
        assert page.dirty

    def test_update_in_place(self):
        page = Page(0)
        slot = page.insert(b"old")
        page.update(slot, b"newer-and-longer")
        assert page.read(slot) == b"newer-and-longer"

    def test_delete_leaves_tombstone(self):
        page = Page(0)
        a = page.insert(b"a")
        b = page.insert(b"b")
        assert page.delete(a) == b"a"
        # Slot numbering of survivors is unchanged.
        assert page.read(b) == b"b"
        with pytest.raises(PageError):
            page.read(a)

    def test_tombstone_slot_reused(self):
        page = Page(0)
        a = page.insert(b"a")
        page.insert(b"b")
        page.delete(a)
        assert page.insert(b"c") == a

    def test_counts(self):
        page = Page(0)
        slots = [page.insert(b"x") for _ in range(5)]
        page.delete(slots[0])
        assert page.slot_count == 5
        assert page.live_count == 4

    def test_records_iterates_live_only(self):
        page = Page(0)
        a = page.insert(b"a")
        page.insert(b"b")
        page.delete(a)
        assert [payload for _slot, payload in page.records()] == [b"b"]

    def test_is_empty(self):
        page = Page(0)
        assert page.is_empty()
        slot = page.insert(b"x")
        assert not page.is_empty()
        page.delete(slot)
        assert page.is_empty()

    def test_negative_page_id_rejected(self):
        with pytest.raises(PageError):
            Page(-1)


class TestPageBounds:
    def test_oversized_record_rejected(self):
        page = Page(0)
        with pytest.raises(PageError):
            page.insert(b"x" * (MAX_RECORD_SIZE + 1))

    def test_max_size_record_fits(self):
        page = Page(0)
        slot = page.insert(b"x" * MAX_RECORD_SIZE)
        assert len(page.read(slot)) == MAX_RECORD_SIZE

    def test_full_page_rejects_insert(self):
        page = Page(0)
        while page.fits(b"y" * 100):
            page.insert(b"y" * 100)
        with pytest.raises(PageError):
            page.insert(b"y" * 100)

    def test_update_growth_beyond_space_rejected(self):
        page = Page(0)
        slot = page.insert(b"small")
        while page.fits(b"z" * 200):
            page.insert(b"z" * 200)
        with pytest.raises(PageError):
            page.update(slot, b"q" * 3000)

    def test_bad_slot_access(self):
        page = Page(0)
        with pytest.raises(PageError):
            page.read(0)
        with pytest.raises(PageError):
            page.read(-1)

    def test_double_delete_rejected(self):
        page = Page(0)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_update_deleted_rejected(self):
        page = Page(0)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.update(slot, b"y")


class TestPageSerialization:
    def test_roundtrip(self):
        page = Page(3)
        payloads = [f"record-{i}".encode() * (i + 1) for i in range(8)]
        for payload in payloads:
            page.insert(payload)
        restored = Page.from_bytes(page.to_bytes())
        assert restored.page_id == 3
        assert [p for _s, p in restored.records()] == payloads

    def test_roundtrip_with_tombstones(self):
        page = Page(0)
        slots = [page.insert(f"r{i}".encode()) for i in range(5)]
        page.delete(slots[1])
        page.delete(slots[3])
        restored = Page.from_bytes(page.to_bytes())
        assert restored.slot_count == 5
        assert restored.live_count == 3
        assert restored.read(slots[0]) == b"r0"
        with pytest.raises(PageError):
            restored.read(slots[1])

    def test_serialized_size_is_exact(self):
        page = Page(0)
        page.insert(b"data")
        assert len(page.to_bytes()) == PAGE_SIZE

    def test_empty_page_roundtrip(self):
        restored = Page.from_bytes(Page(9).to_bytes())
        assert restored.page_id == 9
        assert restored.is_empty()

    def test_checksum_detects_corruption(self):
        page = Page(0)
        page.insert(b"important")
        data = bytearray(page.to_bytes())
        data[-1] ^= 0xFF  # flip a bit in the record area
        with pytest.raises(ChecksumError):
            Page.from_bytes(bytes(data))

    def test_wrong_length_rejected(self):
        with pytest.raises(PageError):
            Page.from_bytes(b"short")

    def test_free_space_survives_roundtrip(self):
        page = Page(0)
        page.insert(b"x" * 100)
        restored = Page.from_bytes(page.to_bytes())
        assert restored.free_space == page.free_space
