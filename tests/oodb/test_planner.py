"""Tests for the cost-aware query planner and the clustered read path."""

import random

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.errors import ObjectNotFound
from repro.oodb.oid import Oid
from repro.obs.metrics import metrics

_MISSING = object()

_OPS = {
    "==": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Emp(Persistent):
    def __init__(self, name, salary, dept, rating):
        super().__init__()
        self.name = name
        self.salary = salary
        self.dept = dept
        self.rating = rating


def brute_force(objects, filters):
    """Reference semantics: missing attribute == no match."""
    out = []
    for obj in objects:
        for attribute, op, value in filters:
            attr_value = getattr(obj, attribute, _MISSING)
            if attr_value is _MISSING or not _OPS[op](attr_value, value):
                break
        else:
            out.append(obj)
    return out


@pytest.fixture
def staffed(mem_db):
    rng = random.Random(0xC0FFEE)
    objects = []
    for i in range(200):
        emp = Emp(
            f"emp{i:03d}",
            rng.randrange(30_000, 120_000, 500),
            rng.choice(["eng", "sales", "hr", "ops"]),
            rng.random(),
        )
        mem_db.add(emp)
        objects.append(emp)
    mem_db.commit()
    mem_db.create_index(Emp, "salary")
    mem_db.create_index(Emp, "dept")
    return mem_db, objects, rng


class TestPlannerEquivalence:
    """Property-style: every plan must agree with brute force."""

    def test_randomized_workloads_match_brute_force(self, staffed):
        db, objects, rng = staffed
        for _ in range(60):
            filters = []
            if rng.random() < 0.7:
                op = rng.choice(["==", "<", "<=", ">", ">="])
                filters.append(("salary", op, rng.randrange(30_000, 120_000, 250)))
            if rng.random() < 0.7:
                filters.append(("dept", "==", rng.choice(["eng", "sales", "qa"])))
            if rng.random() < 0.4:
                # rating has no index: always a residual filter.
                filters.append(("rating", rng.choice(["<", ">="]), rng.random()))
            query = db.query(Emp)
            for attribute, op, value in filters:
                query.where_op(attribute, op, value)
            expected = {obj.name for obj in brute_force(objects, filters)}
            got = {obj.name for obj in query}
            assert got == expected, (filters, query.explain().describe())
            assert query.count() == len(expected)
            assert query.exists() == bool(expected)

    def test_intersection_path_matches_brute_force(self, staffed):
        db, objects, _rng = staffed
        filters = [("salary", ">=", 100_000), ("dept", "==", "eng")]
        query = db.query(Emp)
        for attribute, op, value in filters:
            query.where_op(attribute, op, value)
        plan = query.explain()
        assert plan.access_path in ("index_intersect", "index_eq", "index_range")
        assert {o.name for o in query} == {
            o.name for o in brute_force(objects, filters)
        }

    def test_order_by_with_limit_streams_from_index(self, staffed):
        db, objects, _rng = staffed
        query = db.query(Emp).order_by("salary").limit(10)
        assert query.explain().access_path == "index_order"
        got = [o.salary for o in query]
        expected = sorted(o.salary for o in objects)[:10]
        assert got == expected

    def test_order_by_descending_on_range_filter(self, staffed):
        db, objects, _rng = staffed
        query = (
            db.query(Emp)
            .where_op("salary", ">=", 90_000)
            .order_by("salary", descending=True)
        )
        plan = query.explain()
        assert plan.access_path == "index_range"
        assert not plan.sort_needed
        got = [o.salary for o in query]
        assert got == sorted(
            (o.salary for o in objects if o.salary >= 90_000), reverse=True
        )


class TestPlanShapes:
    def test_eq_filter_plans_index_eq(self, staffed):
        db, _objects, _rng = staffed
        plan = db.query(Emp).where_eq("dept", "eng").explain()
        assert plan.access_path == "index_eq"
        assert plan.index_filters[0].index_name == "Emp.dept"
        assert plan.index_only

    def test_cheapest_index_wins(self, staffed):
        db, objects, _rng = staffed
        # A narrow salary band is far more selective than a whole dept.
        plan = (
            db.query(Emp)
            .where_eq("dept", "eng")
            .where_op("salary", ">=", 118_000)
            .explain()
        )
        assert plan.index_filters[0].attribute == "salary"

    def test_unindexed_filter_is_residual(self, staffed):
        db, _objects, _rng = staffed
        plan = db.query(Emp).where_op("rating", ">", 0.5).explain()
        assert plan.access_path == "extent_scan"
        assert plan.residual_filters == (("rating", ">", 0.5),)
        assert not plan.index_only

    def test_count_is_index_only(self, staffed):
        db, objects, _rng = staffed
        metrics.counter("index_only_answers").reset()
        before_pins = metrics.counter("fetch_many_page_pins").value
        query = db.query(Emp).where_op("salary", ">=", 60_000)
        expected = sum(1 for o in objects if o.salary >= 60_000)
        assert query.count() == expected
        assert metrics.counter("index_only_answers").value == 1
        assert metrics.counter("fetch_many_page_pins").value == before_pins

    def test_execution_metrics_are_labeled_by_access_path(self, staffed):
        db, _objects, _rng = staffed
        counter = metrics.counter("query_executions{access_path=index_eq}")
        before = counter.value
        db.query(Emp).where_eq("dept", "hr").all()
        assert counter.value == before + 1


class TestExplainGolden:
    def test_extent_scan_plan(self, mem_db):
        mem_db.add(Emp("solo", 50_000, "eng", 0.5))
        mem_db.commit()
        plan = mem_db.query(Emp, include_subclasses=False).where_eq(
            "name", "solo"
        )
        assert plan.explain().describe() == (
            "query plan: Emp (subclasses excluded)\n"
            "  access: extent_scan, 1 extent rows\n"
            "  residual: name == 'solo'\n"
            "  index-only count/exists: no"
        )

    def test_indexed_plan_with_order_and_limit(self, mem_db):
        for i in range(4):
            mem_db.add(Emp(f"e{i}", 40_000 + i * 10_000, "eng", 0.1))
        mem_db.commit()
        mem_db.create_index(Emp, "salary")
        plan = (
            mem_db.query(Emp)
            .where_op("salary", ">=", 50_000)
            .order_by("salary")
            .limit(2)
            .explain()
        )
        assert plan.describe() == (
            "query plan: Emp (subclasses included)\n"
            "  access: index_range via btree:Emp.salary (salary >= 50000),"
            " est ~3 rows\n"
            "  order: salary asc (streamed in key order)\n"
            "  limit: 2\n"
            "  index-only count/exists: yes"
        )


class TestHashIndexPlanning:
    """The extendible hash index behind the planner's cost model."""

    @pytest.fixture
    def hashed(self, mem_db):
        rng = random.Random(0xBEEF)
        objects = []
        for i in range(200):
            emp = Emp(
                f"emp{i:03d}",
                rng.randrange(30_000, 120_000, 500),
                rng.choice(["eng", "sales", "hr", "ops"]),
                rng.random(),
            )
            mem_db.add(emp)
            objects.append(emp)
        mem_db.commit()
        mem_db.create_index(Emp, "name", kind="hash")  # hash-only attr
        mem_db.create_index(Emp, "dept", kind="hash")
        mem_db.create_index(Emp, "dept")  # both kinds on dept
        mem_db.create_index(Emp, "salary")  # btree-only attr
        return mem_db, objects

    def test_eq_filter_plans_hash_eq(self, hashed):
        db, objects, = hashed
        query = db.query(Emp).where_eq("name", "emp042")
        plan = query.explain()
        assert plan.access_path == "hash_eq"
        assert plan.index_filters[0].kind == "hash"
        assert plan.index_only
        assert [o.name for o in query] == ["emp042"]
        assert query.count() == 1 and query.exists()

    def test_hash_beats_btree_for_point_lookups(self, hashed):
        db, objects = hashed
        # Both kinds cover dept; the hash probe is cheaper than the
        # B-tree descent at equal estimated rows.
        plan = db.query(Emp).where_eq("dept", "eng").explain()
        assert plan.access_path == "hash_eq"
        assert plan.index_filters[0].kind == "hash"
        choice = plan.index_filters[0]
        assert choice.cost < choice.estimated_rows + 1.0

    def test_hash_results_match_brute_force(self, hashed):
        db, objects = hashed
        for dept in ["eng", "sales", "hr", "ops", "missing"]:
            filters = [("dept", "==", dept)]
            query = db.query(Emp).where_eq("dept", dept)
            expected = {o.name for o in brute_force(objects, filters)}
            assert {o.name for o in query} == expected
            assert query.count() == len(expected)

    def test_hash_is_never_chosen_for_ranges(self, hashed):
        db, objects = hashed
        # ``name`` has only a hash index: a range filter over it must
        # fall back to an extent scan with a residual, never index_range.
        filters = [("name", ">=", "emp150")]
        query = db.query(Emp).where_op("name", ">=", "emp150")
        plan = query.explain()
        assert plan.access_path == "extent_scan"
        assert plan.residual_filters == (("name", ">=", "emp150"),)
        assert not plan.index_filters
        assert {o.name for o in query} == {
            o.name for o in brute_force(objects, filters)
        }

    def test_hash_is_never_chosen_for_order_by(self, hashed):
        db, objects = hashed
        query = db.query(Emp).order_by("name")
        plan = query.explain()
        assert plan.access_path != "index_order"
        assert plan.sort_needed
        assert [o.name for o in query] == sorted(o.name for o in objects)

    def test_range_on_dual_indexed_attribute_uses_btree(self, hashed):
        db, objects = hashed
        db.create_index(Emp, "salary", kind="hash")
        filters = [("salary", ">=", 100_000)]
        query = db.query(Emp).where_op("salary", ">=", 100_000)
        plan = query.explain()
        assert plan.access_path == "index_range"
        assert plan.index_filters[0].kind == "btree"
        assert {o.name for o in query} == {
            o.name for o in brute_force(objects, filters)
        }

    def test_hash_index_maintained_by_updates(self, hashed):
        db, objects = hashed
        target = objects[7]
        with db.transaction():
            target.dept = "research"
        query = db.query(Emp).where_eq("dept", "research")
        assert [o.name for o in query] == [target.name]
        assert db.query(Emp).where_eq("dept", "eng").count() == sum(
            1 for o in objects if o.dept == "eng"
        )

    def test_golden_hash_plan(self, mem_db):
        for i, dept in enumerate(["eng", "eng", "hr", "ops"]):
            mem_db.add(Emp(f"e{i}", 40_000, dept, 0.1))
        mem_db.commit()
        mem_db.create_index(Emp, "dept", kind="hash")
        plan = mem_db.query(Emp).where_eq("dept", "eng").explain()
        assert plan.describe() == (
            "query plan: Emp (subclasses included)\n"
            "  access: hash_eq via hash:Emp.dept (dept == 'eng'),"
            " est ~2 rows\n"
            "  index-only count/exists: yes"
        )

    def test_execution_metrics_labeled_hash_eq(self, hashed):
        db, _objects = hashed
        counter = metrics.counter("query_executions{access_path=hash_eq}")
        before = counter.value
        db.query(Emp).where_eq("dept", "hr").all()
        assert counter.value == before + 1


class TestFetchMany:
    def _build(self, tmp_path, count=120):
        db = Database(str(tmp_path / "db"), sync=False)
        oids = []
        # Payloads sized so the extent spans several heap pages.
        for i in range(count):
            emp = Emp(f"e{i:04d}", 30_000 + i, "eng", 0.0)
            emp.padding = "x" * 256
            db.add(emp)
            oids.append(emp._p_oid)
        db.commit()
        return db, oids

    def test_cold_fetch_crosses_page_boundaries(self, tmp_path):
        db, oids = self._build(tmp_path)
        try:
            assert db._heap.page_count > 1
            db.evict_cache()
            shuffled = list(oids)
            random.Random(7).shuffle(shuffled)
            objects = db.fetch_many(shuffled)
            assert [o._p_oid for o in objects] == shuffled
            assert all(o.padding == "x" * 256 for o in objects)
        finally:
            db.close()

    def test_duplicates_and_order_preserved(self, tmp_path):
        db, oids = self._build(tmp_path, count=30)
        try:
            db.evict_cache()
            batch = [oids[3], oids[7], oids[3], oids[0], oids[7]]
            objects = db.fetch_many(batch)
            assert [o._p_oid for o in objects] == batch
            assert objects[0] is objects[2]  # identity map holds
        finally:
            db.close()

    def test_pins_each_page_once(self, tmp_path):
        db, oids = self._build(tmp_path)
        try:
            db.evict_cache()
            pages = {db._locations[oid].page for oid in oids}
            before = metrics.counter("fetch_many_page_pins").value
            db.fetch_many(oids)
            assert (
                metrics.counter("fetch_many_page_pins").value - before
                == len(pages)
            )
        finally:
            db.close()

    def test_overflow_records_reassemble(self, tmp_path):
        db = Database(str(tmp_path / "db"), sync=False)
        try:
            big = Emp("big", 1, "eng", 0.0)
            big.blob = "y" * 20_000  # spills into an overflow chain
            small = Emp("small", 2, "eng", 0.0)
            db.add(big)
            db.add(small)
            db.commit()
            big_oid, small_oid = big._p_oid, small._p_oid
            db.evict_cache()
            fetched_big, fetched_small = db.fetch_many([big_oid, small_oid])
            assert fetched_big.blob == "y" * 20_000
            assert fetched_small.name == "small"
        finally:
            db.close()

    def test_unknown_oid_raises(self, tmp_path):
        db, oids = self._build(tmp_path, count=5)
        try:
            with pytest.raises(ObjectNotFound):
                db.fetch_many([oids[0], Oid(999_999)])
        finally:
            db.close()
