"""Tests for the query layer."""

import pytest

from repro.oodb import Persistent
from repro.oodb.errors import QueryError


class Animal(Persistent):
    def __init__(self, name, legs, weight):
        super().__init__()
        self.name = name
        self.legs = legs
        self.weight = weight


class Dog(Animal):
    def __init__(self, name, weight):
        super().__init__(name, 4, weight)


@pytest.fixture
def zoo(mem_db):
    animals = [
        Animal("snake", 0, 2.0),
        Animal("bird", 2, 0.5),
        Animal("cat", 4, 4.0),
        Dog("beagle", 10.0),
        Dog("husky", 25.0),
    ]
    for animal in animals:
        mem_db.add(animal)
    mem_db.commit()
    return mem_db


class TestBasicQueries:
    def test_all_includes_subclasses(self, zoo):
        assert zoo.query(Animal).count() == 5

    def test_exclude_subclasses(self, zoo):
        names = {a.name for a in zoo.query(Animal, include_subclasses=False)}
        assert names == {"snake", "bird", "cat"}

    def test_subclass_extent(self, zoo):
        assert {d.name for d in zoo.query(Dog)} == {"beagle", "husky"}

    def test_where_eq(self, zoo):
        assert {a.name for a in zoo.query(Animal).where_eq("legs", 4)} == {
            "cat", "beagle", "husky",
        }

    def test_where_op_comparisons(self, zoo):
        heavy = zoo.query(Animal).where_op("weight", ">", 4.0).all()
        assert {a.name for a in heavy} == {"beagle", "husky"}
        light = zoo.query(Animal).where_op("weight", "<=", 2.0).all()
        assert {a.name for a in light} == {"snake", "bird"}

    def test_where_in(self, zoo):
        hits = zoo.query(Animal).where_op("name", "in", ["cat", "husky"]).all()
        assert {a.name for a in hits} == {"cat", "husky"}

    def test_where_predicate(self, zoo):
        hits = zoo.query(Animal).where(lambda a: a.name.startswith("b")).all()
        assert {a.name for a in hits} == {"bird", "beagle"}

    def test_chained_filters(self, zoo):
        hits = (
            zoo.query(Animal)
            .where_eq("legs", 4)
            .where_op("weight", "<", 20.0)
            .all()
        )
        assert {a.name for a in hits} == {"cat", "beagle"}

    def test_order_by(self, zoo):
        names = [a.name for a in zoo.query(Animal).order_by("weight")]
        assert names == ["bird", "snake", "cat", "beagle", "husky"]

    def test_order_by_descending(self, zoo):
        weights = [
            a.weight for a in zoo.query(Animal).order_by("weight", descending=True)
        ]
        assert weights == sorted(weights, reverse=True)

    def test_limit(self, zoo):
        assert len(zoo.query(Animal).limit(2).all()) == 2

    def test_first(self, zoo):
        first = zoo.query(Animal).order_by("weight").first()
        assert first.name == "bird"

    def test_first_empty(self, zoo):
        assert zoo.query(Animal).where_eq("legs", 100).first() is None

    def test_one(self, zoo):
        assert zoo.query(Animal).where_eq("name", "cat").one().legs == 4

    def test_one_rejects_many(self, zoo):
        with pytest.raises(QueryError):
            zoo.query(Animal).where_eq("legs", 4).one()

    def test_missing_attribute_filters_out(self, zoo):
        assert zoo.query(Animal).where_eq("wings", 2).count() == 0


class TestQueryValidation:
    def test_unknown_class(self, mem_db):
        class Plain:
            pass

        with pytest.raises(QueryError):
            mem_db.query(Plain)

    def test_unknown_operator(self, zoo):
        with pytest.raises(QueryError):
            zoo.query(Animal).where_op("legs", "~=", 4)

    def test_negative_limit(self, zoo):
        with pytest.raises(QueryError):
            zoo.query(Animal).limit(-1)


class TestIndexedQueries:
    def test_eq_uses_index(self, zoo):
        zoo.create_index(Animal, "legs")
        hits = zoo.query(Animal).where_eq("legs", 0).all()
        assert [a.name for a in hits] == ["snake"]

    def test_range_uses_index(self, zoo):
        zoo.create_index(Animal, "weight")
        hits = zoo.query(Animal).where_op("weight", ">=", 10.0).all()
        assert {a.name for a in hits} == {"beagle", "husky"}

    def test_index_respects_subclass_exclusion(self, zoo):
        zoo.create_index(Animal, "legs")
        hits = zoo.query(Animal, include_subclasses=False).where_eq("legs", 4).all()
        assert {a.name for a in hits} == {"cat"}

    def test_index_plus_predicate(self, zoo):
        zoo.create_index(Animal, "legs")
        hits = (
            zoo.query(Animal)
            .where_eq("legs", 4)
            .where(lambda a: a.weight > 5)
            .all()
        )
        assert {a.name for a in hits} == {"beagle", "husky"}

    def test_uncommitted_objects_visible(self, zoo):
        with zoo.transaction():
            zoo.add(Animal("ant", 6, 0.001))
            assert zoo.query(Animal).where_eq("legs", 6).count() == 1
        assert zoo.query(Animal).where_eq("legs", 6).count() == 1

    def test_deleted_objects_invisible_in_txn(self, zoo):
        cat = zoo.query(Animal).where_eq("name", "cat").one()
        with zoo.transaction():
            zoo.delete(cat)
            assert zoo.query(Animal).where_eq("name", "cat").count() == 0


class TestQueryReuse:
    """Executing a query must never mutate the builder (seed regression)."""

    def test_iterating_twice_returns_identical_results(self, zoo):
        query = zoo.query(Animal).where_eq("legs", 4).where_op("weight", "<", 20.0)
        first = [a.name for a in query]
        second = [a.name for a in query]
        assert first == second == ["cat", "beagle"]

    def test_indexed_query_iterates_twice(self, zoo):
        zoo.create_index(Animal, "legs")
        query = zoo.query(Animal).where_eq("legs", 4).where_op("weight", "<", 20.0)
        assert {a.name for a in query} == {"cat", "beagle"}
        assert {a.name for a in query} == {"cat", "beagle"}

    def test_one_does_not_install_limit(self, zoo):
        query = zoo.query(Animal).where_op("weight", ">", 1.0)
        with pytest.raises(QueryError):
            query.one()
        # The seed's one() left limit(2) behind, truncating later calls.
        assert len(query.all()) == 4
        assert query.count() == 4

    def test_explain_does_not_execute_or_mutate(self, zoo):
        query = zoo.query(Animal).where_eq("legs", 4)
        plan = query.explain()
        assert plan.access_path == "extent_scan"
        assert {a.name for a in query} == {"cat", "beagle", "husky"}


class TestOrderByMissingAttribute:
    def test_objects_without_sort_attribute_come_last(self, zoo):
        zoo.add(Animal("jelly", 0, 1.5))
        sponge = Animal("sponge", 0, 0.2)
        del sponge.weight
        zoo.add(sponge)
        zoo.commit()
        names = [a.name for a in zoo.query(Animal).order_by("weight")]
        assert names[-1] == "sponge"
        assert names[:-1] == ["bird", "jelly", "snake", "cat", "beagle", "husky"]

    def test_missing_attribute_last_when_descending(self, zoo):
        sponge = Animal("sponge", 0, 0.2)
        del sponge.weight
        zoo.add(sponge)
        zoo.commit()
        names = [
            a.name for a in zoo.query(Animal).order_by("weight", descending=True)
        ]
        assert names[-1] == "sponge"
        assert names[0] == "husky"

    def test_missing_attribute_last_with_index_order(self, zoo):
        zoo.create_index(Animal, "weight")
        sponge = Animal("sponge", 0, 0.2)
        del sponge.weight
        zoo.add(sponge)
        zoo.commit()
        query = zoo.query(Animal).order_by("weight")
        assert query.explain().access_path == "index_order"
        names = [a.name for a in query]
        assert names[-1] == "sponge"
        assert names[:-1] == ["bird", "snake", "cat", "beagle", "husky"]
