"""Tests for crash recovery: WAL replay and restart behaviour."""

import os

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.recovery import replay
from repro.oodb.storage.wal import WriteAheadLog


class Doc(Persistent):
    def __init__(self, body=""):
        super().__init__()
        self.body = body


class TestReplayUnit:
    def test_committed_updates_applied_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 5, None, {"v": 1})
        wal.log_update(1, 5, {"v": 1}, {"v": 2})
        wal.log_commit(1)
        applied = []
        report = replay(wal, lambda oid, redo: applied.append((oid, redo)))
        assert applied == [(5, {"v": 1}), (5, {"v": 2})]
        assert report.committed_txns == {1}
        assert report.redone_updates == 2
        wal.close()

    def test_uncommitted_ignored(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 5, None, {"v": 1})
        applied = []
        report = replay(wal, lambda oid, redo: applied.append(oid))
        assert applied == []
        assert report.unfinished_txns == {1}
        assert report.clean
        wal.close()

    def test_aborted_ignored(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 5, None, {"v": 1})
        wal.log_abort(1)
        applied = []
        report = replay(wal, lambda oid, redo: applied.append(oid))
        assert applied == []
        assert report.aborted_txns == {1}
        wal.close()

    def test_interleaved_transactions(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_begin(2)
        wal.log_update(1, 10, None, {"a": 1})
        wal.log_update(2, 20, None, {"b": 1})
        wal.log_commit(2)
        wal.log_update(1, 11, None, {"a": 2})
        # txn 1 never commits
        applied = []
        replay(wal, lambda oid, redo: applied.append(oid))
        assert applied == [20]
        wal.close()

    def test_deletion_redo_is_none(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 7, {"v": 1}, None)
        wal.log_commit(1)
        applied = []
        replay(wal, lambda oid, redo: applied.append((oid, redo)))
        assert applied == [(7, None)]
        wal.close()

    def test_max_oid_tracked(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 41, None, {})
        wal.log_commit(1)
        report = replay(wal, lambda oid, redo: None)
        assert report.max_oid_seen == 41
        wal.close()


def _simulate_crash(db: Database) -> None:
    """Close file handles without checkpoint — as a crash would."""
    assert db._heap is not None and db._wal is not None
    db._pool.flush_all()
    db._wal.flush(force_sync=True)
    db._heap._pool = None  # ensure no further use
    db._closed = True
    db._wal._file.close()


class TestRestartRecovery:
    def test_committed_work_survives_crash_before_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("hello")
            db.add(doc)
            db.set_root("doc", doc)
        oid = doc.oid
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        assert db2.last_recovery is not None
        restored = db2.fetch(oid)
        assert restored.body == "hello"
        assert db2.get_root("doc") is restored
        db2.close()

    def test_oid_allocation_not_reused_after_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("one")
            db.add(doc)
        first_oid = doc.oid
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        with db2.transaction():
            doc2 = Doc("two")
            db2.add(doc2)
        assert doc2.oid.value > first_oid.value
        db2.close()

    def test_update_then_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("v1")
            db.add(doc)
        db.checkpoint()
        with db.transaction():
            doc.body = "v2"
        oid = doc.oid
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        assert db2.fetch(oid).body == "v2"
        db2.close()

    def test_delete_then_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("bye")
            db.add(doc)
        db.checkpoint()
        oid = doc.oid
        with db.transaction():
            db.delete(doc)
        _simulate_crash(db)

        from repro.oodb import ObjectNotFound

        db2 = Database(path, sync=False)
        with pytest.raises(ObjectNotFound):
            db2.fetch(oid)
        db2.close()

    def test_clean_reopen_after_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            db.set_root("d", Doc("x"))
        db.close()  # checkpoint happens here

        db2 = Database(path, sync=False)
        assert db2.last_recovery is not None
        assert db2.last_recovery.clean
        assert db2.get_root("d").body == "x"
        db2.close()

    def test_wal_truncated_after_recovery_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            db.set_root("d", Doc("x"))
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        assert not db2.last_recovery.clean
        db2.close()
        wal_size = os.path.getsize(os.path.join(path, "wal.log"))
        assert wal_size == 0

    def test_indexes_rebuilt_on_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            for i in range(4):
                db.add(Doc(f"doc-{i}"))
        db.create_index(Doc, "body")
        db.close()

        db2 = Database(path, sync=False)
        hits = db2.query(Doc).where_eq("body", "doc-2").all()
        assert len(hits) == 1
        db2.close()
