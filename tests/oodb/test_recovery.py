"""Tests for crash recovery: WAL replay and restart behaviour."""

import os

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.recovery import replay
from repro.oodb.storage.wal import WriteAheadLog


class Doc(Persistent):
    def __init__(self, body=""):
        super().__init__()
        self.body = body


class TestReplayUnit:
    def test_committed_updates_applied_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 5, None, {"v": 1})
        wal.log_update(1, 5, {"v": 1}, {"v": 2})
        wal.log_commit(1)
        applied = []
        report = replay(wal, lambda oid, redo: applied.append((oid, redo)))
        assert applied == [(5, {"v": 1}), (5, {"v": 2})]
        assert report.committed_txns == {1}
        assert report.redone_updates == 2
        wal.close()

    def test_uncommitted_ignored(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 5, None, {"v": 1})
        applied = []
        report = replay(wal, lambda oid, redo: applied.append(oid))
        assert applied == []
        assert report.unfinished_txns == {1}
        assert report.clean
        wal.close()

    def test_aborted_ignored(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 5, None, {"v": 1})
        wal.log_abort(1)
        applied = []
        report = replay(wal, lambda oid, redo: applied.append(oid))
        assert applied == []
        assert report.aborted_txns == {1}
        wal.close()

    def test_interleaved_transactions(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_begin(2)
        wal.log_update(1, 10, None, {"a": 1})
        wal.log_update(2, 20, None, {"b": 1})
        wal.log_commit(2)
        wal.log_update(1, 11, None, {"a": 2})
        # txn 1 never commits
        applied = []
        replay(wal, lambda oid, redo: applied.append(oid))
        assert applied == [20]
        wal.close()

    def test_deletion_redo_is_none(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 7, {"v": 1}, None)
        wal.log_commit(1)
        applied = []
        replay(wal, lambda oid, redo: applied.append((oid, redo)))
        assert applied == [(7, None)]
        wal.close()

    def test_max_oid_tracked(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        wal.log_begin(1)
        wal.log_update(1, 41, None, {})
        wal.log_commit(1)
        report = replay(wal, lambda oid, redo: None)
        assert report.max_oid_seen == 41
        wal.close()


def _simulate_crash(db: Database) -> None:
    """Close file handles without checkpoint — as a crash would."""
    assert db._heap is not None and db._wal is not None
    db._pool.flush_all()
    db._wal.flush(force_sync=True)
    db._heap._pool = None  # ensure no further use
    db._closed = True
    db._wal._file.close()


class TestRestartRecovery:
    def test_committed_work_survives_crash_before_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("hello")
            db.add(doc)
            db.set_root("doc", doc)
        oid = doc.oid
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        assert db2.last_recovery is not None
        restored = db2.fetch(oid)
        assert restored.body == "hello"
        assert db2.get_root("doc") is restored
        db2.close()

    def test_oid_allocation_not_reused_after_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("one")
            db.add(doc)
        first_oid = doc.oid
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        with db2.transaction():
            doc2 = Doc("two")
            db2.add(doc2)
        assert doc2.oid.value > first_oid.value
        db2.close()

    def test_update_then_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("v1")
            db.add(doc)
        db.checkpoint()
        with db.transaction():
            doc.body = "v2"
        oid = doc.oid
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        assert db2.fetch(oid).body == "v2"
        db2.close()

    def test_delete_then_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            doc = Doc("bye")
            db.add(doc)
        db.checkpoint()
        oid = doc.oid
        with db.transaction():
            db.delete(doc)
        _simulate_crash(db)

        from repro.oodb import ObjectNotFound

        db2 = Database(path, sync=False)
        with pytest.raises(ObjectNotFound):
            db2.fetch(oid)
        db2.close()

    def test_clean_reopen_after_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            db.set_root("d", Doc("x"))
        db.close()  # checkpoint happens here

        db2 = Database(path, sync=False)
        assert db2.last_recovery is not None
        assert db2.last_recovery.clean
        assert db2.get_root("d").body == "x"
        db2.close()

    def test_wal_truncated_after_recovery_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            db.set_root("d", Doc("x"))
        _simulate_crash(db)

        db2 = Database(path, sync=False)
        assert not db2.last_recovery.clean
        db2.close()
        wal_size = os.path.getsize(os.path.join(path, "wal.log"))
        assert wal_size == 0

    def test_indexes_rebuilt_on_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            for i in range(4):
                db.add(Doc(f"doc-{i}"))
        db.create_index(Doc, "body")
        db.close()

        db2 = Database(path, sync=False)
        hits = db2.query(Doc).where_eq("body", "doc-2").all()
        assert len(hits) == 1
        db2.close()


class Packet(Persistent):
    """Schema'd class: its records hit the WAL as packed binary frames."""

    _p_schema = [("seq", "int"), ("tag", "str:16")]

    def __init__(self, seq=0, tag=""):
        super().__init__()
        self.seq = seq
        self.tag = tag


def _simulate_hard_crash(db: Database) -> None:
    """Crash with the WAL durable but dirty heap pages still in memory.

    Unlike :func:`_simulate_crash` this does NOT flush the buffer pool,
    so the heap on disk is stale and restart recovery must actually redo
    the committed work from the log.
    """
    assert db._heap is not None and db._wal is not None
    db._wal.flush(force_sync=True)
    db._closed = True
    db._wal._file.close()


class TestBinaryWalEntries:
    def test_bytes_redo_round_trips_through_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        payload = b"\x01" + bytes(range(48))
        wal.log_begin(1)
        wal.log_update(1, 9, {"v": 1}, payload)
        wal.log_update(1, 10, None, payload * 2)
        wal.log_commit(1)
        applied = []
        report = replay(wal, lambda oid, redo: applied.append((oid, redo)))
        assert applied == [(9, payload), (10, payload * 2)]
        assert report.redone_updates == 2
        wal.close()

    def test_binary_and_json_entries_interleave(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", sync=False)
        packed = b"\x01packed-payload"
        wal.log_begin(1)
        wal.log_update(1, 1, None, {"v": "json"})
        wal.log_update(1, 2, {"v": "json"}, packed)
        wal.log_update(1, 3, None, None)  # delete
        wal.log_commit(1)
        applied = []
        replay(wal, lambda oid, redo: applied.append((oid, redo)))
        assert applied == [(1, {"v": "json"}), (2, packed), (3, None)]
        wal.close()


class TestPackedRecovery:
    def test_mixed_formats_survive_a_hard_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            packet = Packet(7, "urgent")
            packet.extra = {"route": [1, 2]}  # dynamic region
            doc = Doc("plain json record")
            db.set_root("packet", packet)
            db.set_root("doc", doc)
        _simulate_hard_crash(db)

        db2 = Database(path, sync=False)
        assert db2.last_recovery is not None
        assert not db2.last_recovery.clean
        packet = db2.get_root("packet")
        assert (packet.seq, packet.tag) == (7, "urgent")
        assert packet.extra == {"route": [1, 2]}
        assert db2.get_root("doc").body == "plain json record"
        db2.close()

    def test_packed_update_chain_replays_in_order(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            packet = Packet(0, "start")
            db.set_root("packet", packet)
        for seq in (1, 2, 3):
            with db.transaction():
                packet.seq = seq
                packet.tag = f"rev{seq}"
        _simulate_hard_crash(db)

        db2 = Database(path, sync=False)
        packet = db2.get_root("packet")
        assert (packet.seq, packet.tag) == (3, "rev3")
        db2.close()

    def test_extents_and_indexes_rebuilt_over_packed_records(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, sync=False)
        with db.transaction():
            for i in range(6):
                db.set_root(f"p{i}", Packet(i, f"tag{i % 2}"))
        _simulate_hard_crash(db)

        db2 = Database(path, sync=False)
        db2.create_index(Packet, "tag", kind="hash")
        assert db2.extents.count("Packet") == 6
        assert db2.query(Packet).where_eq("tag", "tag1").count() == 3
        db2.close()

    def test_pre_schema_store_reopened_with_schema(self, tmp_path):
        """A store written before the class had a ``_p_schema`` keeps its
        JSON records readable; updates rewrite them packed in place."""
        from repro.oodb import codec
        from repro.oodb.schema import ClassRegistry

        path = str(tmp_path / "db")
        old_registry = ClassRegistry()

        class Msg(Persistent, registry=old_registry):
            _p_class_name = "Msg"

            def __init__(self, n=0, text=""):
                super().__init__()
                self.n = n
                self.text = text

        db = Database(path, registry=old_registry, sync=False)
        with db.transaction():
            db.set_root("a", Msg(1, "alpha"))
            db.set_root("b", Msg(2, "beta"))
        db.close()

        new_registry = ClassRegistry()

        class MsgV2(Persistent, registry=new_registry):
            _p_class_name = "Msg"
            _p_schema = [("n", "int"), ("text", "str:32")]

            def __init__(self, n=0, text=""):
                super().__init__()
                self.n = n
                self.text = text

        db2 = Database(path, registry=new_registry, sync=False)
        a = db2.get_root("a")
        assert (a.n, a.text) == (1, "alpha")
        # The legacy record is still JSON on disk...
        assert not codec.is_packed(db2._heap.read(db2._locations[a._p_oid]))
        with db2.transaction():
            a.text = "alpha-v2"
        # ...and the rewrite switched it to the packed format.
        assert codec.is_packed(db2._heap.read(db2._locations[a._p_oid]))
        db2.close()

        db3 = Database(path, registry=new_registry, sync=False)
        assert db3.get_root("a").text == "alpha-v2"
        assert db3.get_root("b").text == "beta"  # untouched, still JSON
        db3.close()
