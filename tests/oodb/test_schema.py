"""Tests for persistent classes, the registry, and extents."""

import pytest

from repro.oodb import Persistent
from repro.oodb.errors import SchemaError, UnregisteredClass
from repro.oodb.oid import Oid
from repro.oodb.schema import ClassRegistry, Extents, PersistentMeta


class Vehicle(Persistent):
    def __init__(self, wheels=4):
        super().__init__()
        self.wheels = wheels


class Car(Vehicle):
    pass


class SportsCar(Car):
    pass


class TestClassRegistry:
    def test_registration_via_metaclass(self):
        registry = ClassRegistry()

        class Local(Persistent, registry=registry):
            pass

        assert registry.get("Local") is Local
        assert "Local" in registry

    def test_unknown_class(self):
        with pytest.raises(UnregisteredClass):
            ClassRegistry().get("Nothing")

    def test_subclass_graph(self):
        registry = ClassRegistry()

        class A(Persistent, registry=registry):
            pass

        class B(A, registry=registry):
            pass

        class C(B, registry=registry):
            pass

        assert registry.subclass_names("A") == {"B", "C"}
        assert registry.family("B") == {"B", "C"}
        assert registry.family("C") == {"C"}

    def test_register_opt_out(self):
        registry = ClassRegistry()

        class Hidden(Persistent, registry=registry, register=False):
            pass

        assert "Hidden" not in registry

    def test_explicit_class_name(self):
        registry = ClassRegistry()

        class Renamed(Persistent, registry=registry):
            _p_class_name = "PaperName"

        assert registry.get("PaperName") is Renamed


class TestPersistentBase:
    def test_starts_transient(self):
        vehicle = Vehicle()
        assert vehicle.oid is None
        assert not vehicle.is_persistent

    def test_add_assigns_oid(self, mem_db):
        vehicle = Vehicle()
        oid = mem_db.add(vehicle)
        assert vehicle.oid == oid
        assert vehicle.is_persistent

    def test_double_add_is_idempotent(self, mem_db):
        vehicle = Vehicle()
        first = mem_db.add(vehicle)
        second = mem_db.add(vehicle)
        assert first == second

    def test_repr(self, mem_db):
        vehicle = Vehicle()
        assert "transient" in repr(vehicle)
        mem_db.add(vehicle)
        assert str(vehicle.oid) in repr(vehicle)

    def test_attribute_writes_untracked_when_transient(self):
        vehicle = Vehicle()
        vehicle.wheels = 6  # must not raise, no txn machinery involved
        assert vehicle.wheels == 6

    def test_non_persistent_add_rejected(self, mem_db):
        with pytest.raises(TypeError):
            mem_db.add(object())  # type: ignore[arg-type]

    def test_metaclass_is_persistent_meta(self):
        assert isinstance(Vehicle, PersistentMeta)


class TestExtents:
    def test_extent_tracks_added_objects(self, mem_db):
        car = Car()
        mem_db.add(car)
        assert car.oid in mem_db.extents.of("Car")

    def test_extent_includes_subclasses_by_default(self, mem_db):
        mem_db.add(Car())
        mem_db.add(SportsCar())
        assert mem_db.extents.count("Vehicle") >= 2
        assert mem_db.extents.count("Car") >= 2
        assert mem_db.extents.count("Car", include_subclasses=False) >= 1

    def test_extent_shrinks_on_delete(self, mem_db):
        car = Car()
        mem_db.add(car)
        mem_db.commit()
        oid = car.oid
        mem_db.delete(car)
        mem_db.commit()
        assert oid not in mem_db.extents.of("Car")

    def test_unknown_class_extent(self, mem_db):
        with pytest.raises(SchemaError):
            mem_db.extents.of("NoSuchClass")

    def test_standalone_extents(self):
        registry = ClassRegistry()

        class X(Persistent, registry=registry):
            pass

        extents = Extents(registry)
        extents.add("X", Oid(1))
        extents.add("X", Oid(2))
        extents.remove("X", Oid(1))
        assert extents.of("X") == {Oid(2)}
        extents.clear()
        assert extents.of("X") == set()
