"""Tests for the object ⇄ record codec."""

import datetime as dt
import enum

import pytest

from repro.oodb import Database, Persistent
from repro.oodb.errors import SerializationError
from repro.oodb.oid import Oid


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


def module_level_condition(ctx):
    return True


class Thing(Persistent):
    def __init__(self, **attrs):
        super().__init__()
        for key, value in attrs.items():
            setattr(self, key, value)


class TransientHolder(Persistent):
    _p_transient = ("cache",)

    def __init__(self):
        super().__init__()
        self.kept = 1
        self.cache = object()


@pytest.fixture
def serializer(mem_db):
    return mem_db.serializer


class TestScalars:
    @pytest.mark.parametrize(
        "value", [0, 1, -5, 3.25, "text", True, False, None]
    )
    def test_roundtrip(self, serializer, value):
        assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_bool_not_confused_with_int(self, serializer):
        assert serializer.decode_value(serializer.encode_value(True)) is True


class TestContainers:
    def test_list(self, serializer):
        value = [1, "a", None]
        assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_nested_list(self, serializer):
        value = [[1, [2, [3]]], []]
        assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_tuple_stays_tuple(self, serializer):
        value = (1, (2, 3))
        assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_set_and_frozenset(self, serializer):
        assert serializer.decode_value(serializer.encode_value({1, 2})) == {1, 2}
        result = serializer.decode_value(serializer.encode_value(frozenset({3})))
        assert result == frozenset({3})
        assert isinstance(result, frozenset)

    def test_string_key_dict(self, serializer):
        value = {"a": 1, "b": {"c": [2]}}
        assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_non_string_key_dict(self, serializer):
        value = {1: "one", (2, 3): "pair"}
        assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_dollar_prefixed_keys_survive(self, serializer):
        value = {"$ref": "not-a-real-ref", "$oid": 12}
        assert serializer.decode_value(serializer.encode_value(value)) == value


class TestSpecialTypes:
    def test_bytes(self, serializer):
        blob = b"\x00\xffbin"
        assert serializer.decode_value(serializer.encode_value(blob)) == blob

    def test_datetime(self, serializer):
        value = dt.datetime(2026, 7, 5, 12, 30, 15)
        assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_date_and_time(self, serializer):
        for value in (dt.date(1993, 5, 26), dt.time(9, 45)):
            assert serializer.decode_value(serializer.encode_value(value)) == value

    def test_oid_value(self, serializer):
        assert serializer.decode_value(serializer.encode_value(Oid(17))) == Oid(17)

    def test_enum(self, serializer):
        decoded = serializer.decode_value(serializer.encode_value(Color.BLUE))
        assert decoded is Color.BLUE

    def test_module_level_function(self, serializer):
        restored = serializer.decode_value(
            serializer.encode_value(module_level_condition)
        )
        assert restored is module_level_condition

    def test_lambda_rejected(self, serializer):
        with pytest.raises(SerializationError):
            serializer.encode_value(lambda x: x)

    def test_closure_rejected(self, serializer):
        y = 3

        def closed(ctx):
            return y

        with pytest.raises(SerializationError):
            serializer.encode_value(closed)

    def test_arbitrary_object_rejected(self, serializer):
        with pytest.raises(SerializationError):
            serializer.encode_value(object())


class TestObjectRecords:
    def test_encode_skips_p_attrs_and_transients(self, mem_db):
        holder = TransientHolder()
        mem_db.add(holder)
        record = mem_db.serializer.encode_object(holder)
        assert record["class"] == "TransientHolder"
        assert record["attrs"] == {"kept": 1}

    def test_reference_roundtrip(self, mem_db):
        a = Thing(name="a")
        b = Thing(name="b", friend=a)
        mem_db.add(b)
        mem_db.commit()
        record = mem_db.serializer.encode_object(b)
        assert record["attrs"]["friend"] == {"$ref": a.oid.value}
        restored = mem_db.serializer.decode_object(record)
        assert restored.friend is a  # identity map

    def test_cycle_roundtrip(self, mem_db):
        a = Thing(name="a")
        b = Thing(name="b")
        a.partner = b
        b.partner = a
        mem_db.add(a)
        mem_db.commit()
        mem_db.evict_cache()
        a2 = mem_db.fetch(a.oid)
        assert a2.partner.partner is a2

    def test_unregistered_object_rejected(self, mem_db):
        class NotPersistent:
            pass

        thing = Thing(oops=NotPersistent())
        mem_db.add(thing)
        with pytest.raises(SerializationError) as excinfo:
            mem_db.serializer.encode_object(thing)
        assert "oops" in str(excinfo.value)

    def test_record_bytes_roundtrip(self, mem_db):
        thing = Thing(x=1, y=[True, None])
        mem_db.add(thing)
        record = mem_db.serializer.encode_object(thing)
        from repro.oodb.serializer import Serializer

        assert Serializer.record_from_bytes(
            Serializer.record_to_bytes(record)
        ) == record

    def test_corrupt_record_bytes(self):
        from repro.oodb.serializer import Serializer

        with pytest.raises(SerializationError):
            Serializer.record_from_bytes(b"\xff\x00 not json")

    def test_cross_database_reference_rejected(self, mem_db, tmp_path):
        other = Database()
        try:
            alien = Thing(name="alien")
            other.add(alien)
            local = Thing(buddy=alien)
            mem_db.add(local)
            with pytest.raises(SerializationError):
                mem_db.serializer.encode_object(local)
        finally:
            other.close()

    def test_reachability_auto_adds(self, mem_db):
        inner = Thing(name="inner")
        outer = Thing(name="outer", inner=inner)
        mem_db.add(outer)
        mem_db.commit()
        assert inner.is_persistent
        assert inner._p_db is mem_db
