"""Tests for transactions: atomicity, rollback, savepoints, hooks."""

import pytest

from repro.oodb import (
    Persistent,
    TransactionAborted,
    TransactionError,
)
from repro.oodb.errors import NoActiveTransaction, TransactionNotActive
from repro.oodb.transactions import TransactionStatus


class Counter(Persistent):
    def __init__(self, value=0):
        super().__init__()
        self.value = value


class TestCommit:
    def test_commit_persists(self, db):
        with db.transaction():
            counter = Counter(5)
            db.add(counter)
        db.evict_cache()
        assert db.fetch(counter.oid).value == 5

    def test_update_persists(self, db):
        with db.transaction():
            counter = Counter(1)
            db.add(counter)
        with db.transaction():
            counter.value = 99
        db.evict_cache()
        assert db.fetch(counter.oid).value == 99

    def test_empty_transaction_commits(self, db):
        with db.transaction():
            pass
        assert db.txn_manager.committed == 1

    def test_implicit_transaction(self, db):
        counter = Counter(3)
        db.add(counter)
        assert db.current_transaction is not None
        assert db.current_transaction.implicit
        db.commit()
        assert db.current_transaction is None
        db.evict_cache()
        assert db.fetch(counter.oid).value == 3

    def test_delete_persists(self, db):
        counter = Counter()
        db.add(counter)
        db.commit()
        oid = counter.oid
        with db.transaction():
            db.delete(counter)
        from repro.oodb import ObjectNotFound

        with pytest.raises(ObjectNotFound):
            db.fetch(oid)


class TestRollback:
    def test_abort_restores_attribute(self, db):
        counter = Counter(10)
        db.add(counter)
        db.commit()
        try:
            with db.transaction():
                counter.value = 777
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert counter.value == 10

    def test_abort_detaches_created(self, db):
        counter = Counter()
        try:
            with db.transaction():
                db.add(counter)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not counter.is_persistent
        assert counter._p_db is None

    def test_abort_restores_deleted(self, db):
        counter = Counter(4)
        db.add(counter)
        db.commit()
        oid = counter.oid
        try:
            with db.transaction():
                db.delete(counter)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert db.fetch(oid) is counter
        assert counter.value == 4

    def test_abort_removes_new_attributes(self, db):
        counter = Counter()
        db.add(counter)
        db.commit()
        try:
            with db.transaction():
                counter.extra = "should vanish"
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not hasattr(counter, "extra")

    def test_explicit_abort_call(self, db):
        counter = Counter(1)
        db.add(counter)
        db.commit()
        counter.value = 2
        db.abort()
        assert counter.value == 1
        assert db.current_transaction is None

    def test_transaction_abort_raises(self, db):
        counter = Counter(1)
        db.add(counter)
        db.commit()
        with pytest.raises(TransactionAborted):
            with db.transaction() as txn:
                counter.value = 50
                txn.abort("testing")
        assert counter.value == 1

    def test_aborted_stats(self, db):
        try:
            with db.transaction():
                db.add(Counter())
                raise RuntimeError
        except RuntimeError:
            pass
        assert db.txn_manager.aborted == 1


class TestProtocol:
    def test_no_nested_transactions(self, db):
        with db.transaction():
            with pytest.raises(TransactionError):
                db.begin()

    def test_commit_twice_rejected(self, db):
        txn = db.begin()
        db.txn_manager.commit(txn)
        with pytest.raises(TransactionNotActive):
            db.txn_manager.commit(txn)

    def test_require_current_without_txn(self, db):
        with pytest.raises(NoActiveTransaction):
            db.txn_manager.require_current()

    def test_status_transitions(self, db):
        txn = db.begin()
        assert txn.status is TransactionStatus.ACTIVE
        db.txn_manager.commit(txn)
        assert txn.status is TransactionStatus.COMMITTED

    def test_rollback_after_commit_is_noop(self, db):
        counter = Counter(1)
        txn = db.begin()
        db.add(counter)
        db.txn_manager.commit(txn)
        db.txn_manager.rollback(txn)
        assert counter.is_persistent


class TestSavepoints:
    def test_rollback_to_savepoint(self, db):
        counter = Counter(1)
        db.add(counter)
        db.commit()
        with db.transaction() as txn:
            counter.value = 2
            txn.savepoint("mid")
            counter.value = 3
            txn.rollback_to("mid")
            assert counter.value == 2
        assert counter.value == 2

    def test_savepoint_detaches_later_creations(self, db):
        late = Counter(9)
        with db.transaction() as txn:
            txn.savepoint("start")
            db.add(late)
            txn.rollback_to("start")
            assert not late.is_persistent

    def test_unknown_savepoint(self, db):
        with db.transaction() as txn:
            with pytest.raises(TransactionError):
                txn.rollback_to("nope")

    def test_savepoint_then_commit_keeps_pre_savepoint_work(self, db):
        counter = Counter(0)
        db.add(counter)
        db.commit()
        with db.transaction() as txn:
            counter.value = 5
            txn.savepoint("s")
            counter.value = 6
            txn.rollback_to("s")
        db.evict_cache()
        assert db.fetch(counter.oid).value == 5


class TestHooks:
    def test_pre_commit_hook_runs_inside_txn(self, db):
        counter = Counter(0)
        db.add(counter)
        db.commit()
        with db.transaction() as txn:
            txn.add_pre_commit_hook(lambda: setattr(counter, "value", 42))
        db.evict_cache()
        assert db.fetch(counter.oid).value == 42

    def test_pre_commit_hooks_cascade(self, db):
        order = []
        with db.transaction() as txn:
            def second():
                order.append("second")

            def first():
                order.append("first")
                txn.add_pre_commit_hook(second)

            txn.add_pre_commit_hook(first)
        assert order == ["first", "second"]

    def test_pre_commit_cascade_limit(self, db):
        with pytest.raises(TransactionError):
            with db.transaction() as txn:
                def again():
                    txn.add_pre_commit_hook(again)

                txn.add_pre_commit_hook(again)

    def test_post_commit_hook_runs_after_commit(self, db):
        seen = []
        with db.transaction() as txn:
            counter = Counter(7)
            db.add(counter)
            txn.add_post_commit_hook(
                lambda: seen.append(db.current_transaction)
            )
            assert seen == []
        assert seen == [None]  # ran with no transaction active

    def test_abort_hook_runs_on_rollback(self, db):
        seen = []
        try:
            with db.transaction() as txn:
                txn.add_abort_hook(lambda: seen.append("aborted"))
                raise RuntimeError
        except RuntimeError:
            pass
        assert seen == ["aborted"]

    def test_post_commit_hook_skipped_on_abort(self, db):
        seen = []
        try:
            with db.transaction() as txn:
                txn.add_post_commit_hook(lambda: seen.append("nope"))
                raise RuntimeError
        except RuntimeError:
            pass
        assert seen == []

    def test_failing_pre_commit_hook_aborts(self, db):
        counter = Counter(0)
        db.add(counter)
        db.commit()
        with pytest.raises(ZeroDivisionError):
            with db.transaction() as txn:
                counter.value = 9
                txn.add_pre_commit_hook(lambda: 1 / 0)
        # The failed commit rolled the whole transaction back.
        assert counter.value == 0


class TestIsolationOfInMemoryDb:
    def test_memory_db_rollback(self, mem_db):
        counter = Counter(1)
        mem_db.add(counter)
        mem_db.commit()
        try:
            with mem_db.transaction():
                counter.value = 5
                raise RuntimeError
        except RuntimeError:
            pass
        assert counter.value == 1

    def test_memory_db_delete_and_fetch(self, mem_db):
        counter = Counter(2)
        mem_db.add(counter)
        mem_db.commit()
        oid = counter.oid
        mem_db.evict_cache()
        assert mem_db.fetch(oid).value == 2
