"""Tests for the write-ahead log."""

import pytest

from repro.oodb.storage.wal import LogRecord, LogRecordType, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(tmp_path / "wal.log", sync=False)
    yield log
    log.close()


class TestAppendRead:
    def test_empty_log(self, wal):
        assert list(wal.records()) == []

    def test_single_record_roundtrip(self, wal):
        wal.log_begin(7)
        records = list(wal.records())
        assert len(records) == 1
        assert records[0].type is LogRecordType.BEGIN
        assert records[0].txn_id == 7

    def test_update_record_carries_images(self, wal):
        undo = {"class": "X", "attrs": {"a": 1}}
        redo = {"class": "X", "attrs": {"a": 2}}
        wal.log_update(3, oid=42, undo=undo, redo=redo)
        record = next(wal.records())
        assert record.oid == 42
        assert record.undo == undo
        assert record.redo == redo

    def test_full_transaction_sequence(self, wal):
        wal.log_begin(1)
        wal.log_update(1, 10, None, {"class": "A", "attrs": {}})
        wal.log_commit(1)
        wal.log_begin(2)
        wal.log_abort(2)
        types = [r.type for r in wal.records()]
        assert types == [
            LogRecordType.BEGIN,
            LogRecordType.UPDATE,
            LogRecordType.COMMIT,
            LogRecordType.BEGIN,
            LogRecordType.ABORT,
        ]

    def test_lsns_monotonic(self, wal):
        lsns = [wal.log_begin(i) for i in range(10)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 10

    def test_checkpoint_extra(self, wal):
        wal.log_checkpoint({"allocator": 99})
        record = next(wal.records())
        assert record.type is LogRecordType.CHECKPOINT
        assert record.extra == {"allocator": 99}

    def test_unicode_payloads(self, wal):
        wal.log_update(1, 1, None, {"class": "X", "attrs": {"name": "héllo ☃"}})
        record = next(wal.records())
        assert record.redo["attrs"]["name"] == "héllo ☃"


class TestDurabilityAndCorruption:
    def test_reopen_preserves_entries(self, tmp_path):
        log = WriteAheadLog(tmp_path / "w.log", sync=False)
        log.log_begin(1)
        log.log_commit(1)
        log.close()
        log2 = WriteAheadLog(tmp_path / "w.log", sync=False)
        assert len(list(log2.records())) == 2
        log2.close()

    def test_append_after_reopen(self, tmp_path):
        log = WriteAheadLog(tmp_path / "w.log", sync=False)
        log.log_begin(1)
        log.close()
        log2 = WriteAheadLog(tmp_path / "w.log", sync=False)
        log2.log_begin(2)
        assert [r.txn_id for r in log2.records()] == [1, 2]
        log2.close()

    def test_torn_tail_ignored(self, tmp_path):
        path = tmp_path / "torn.log"
        log = WriteAheadLog(path, sync=False)
        log.log_begin(1)
        log.log_commit(1)
        log.close()
        # Simulate a crash mid-append: garbage half-frame at the tail.
        with open(path, "ab") as handle:
            handle.write(b"\x55\x00\x00\x00ga")
        log2 = WriteAheadLog(path, sync=False)
        assert len(list(log2.records())) == 2
        log2.close()

    def test_corrupt_checksum_truncates(self, tmp_path):
        path = tmp_path / "corrupt.log"
        log = WriteAheadLog(path, sync=False)
        log.log_begin(1)
        end_of_first = log.tail_size()
        log.log_begin(2)
        log.close()
        data = bytearray(path.read_bytes())
        data[end_of_first + 9] ^= 0xFF  # corrupt second record's payload
        path.write_bytes(bytes(data))
        log2 = WriteAheadLog(path, sync=False)
        assert [r.txn_id for r in log2.records()] == [1]
        log2.close()

    def test_truncate(self, wal):
        wal.log_begin(1)
        wal.truncate()
        assert list(wal.records()) == []
        assert wal.tail_size() == 0
        wal.log_begin(2)
        assert [r.txn_id for r in wal.records()] == [2]


class TestLogRecordCodec:
    def test_payload_roundtrip(self):
        record = LogRecord(
            LogRecordType.UPDATE,
            txn_id=5,
            oid=9,
            undo=None,
            redo={"class": "C", "attrs": {"x": [1, 2]}},
        )
        restored = LogRecord.from_payload(record.to_payload(), lsn=0)
        assert restored.type is LogRecordType.UPDATE
        assert restored.txn_id == 5
        assert restored.oid == 9
        assert restored.redo == record.redo

    def test_unserializable_extra_rejected(self):
        record = LogRecord(LogRecordType.COMMIT, 1, extra={"bad": object()})
        with pytest.raises(TypeError):
            record.to_payload()
