"""Integration tests: every example script runs clean as a subprocess.

The examples contain their own assertions, so a zero exit status means
the documented behaviour actually happened.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_expected_examples_present():
    assert {"quickstart.py", "portfolio.py", "banking.py",
            "payroll.py", "patients.py"} <= set(EXAMPLES)


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example} produced no output"
