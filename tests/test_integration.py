"""End-to-end integration: a full application lifecycle.

One scenario exercising the whole stack together: schema + objects +
class rules + instance rules + composite events + coupling modes +
persistence of rules/events + crash + recovery + continued monitoring.
"""

import pytest

from repro.core import Primitive, Rule, Sentinel, Sequence
from repro.oodb import Database, Persistent, TransactionAborted
from repro.workloads import Account, Employee, Manager


class AuditLog(Persistent):
    def __init__(self):
        super().__init__()
        self.entries: list[str] = []

    def append(self, text: str) -> None:
        self.entries = self.entries + [text]


class TestApplicationLifecycle:
    def test_full_story(self, tmp_path):
        path = str(tmp_path / "appdb")
        self._session_build(path)
        self._session_crash(path)
        self._session_recover_and_continue(path)

    # ------------------------------------------------------------------
    def _session_build(self, path):
        system = Sentinel(path=path, adopt_class_rules=False)
        with system:
            db = system.db
            with db.transaction():
                audit = AuditLog()
                db.set_root("audit", audit)
                mike = Manager("Mike", 90_000.0)
                fred = Employee("Fred", 50_000.0)
                mike.add_report(fred)
                db.add(mike)
                db.add(fred)
                db.set_root("mike", mike)
                db.set_root("fred", fred)
                checking = Account("CHK", 1_000.0)
                db.add(checking)
                db.set_root("checking", checking)

            # A persistent DSL rule: audit every large deposit (deferred).
            big_deposit = system.rule_from_spec(
                """
                RULE BigDeposit
                ON   end Account::deposit(float amount)
                IF   amount >= 500
                DO   ctx.rule.hits = getattr(ctx.rule, "hits", 0) + 1
                MODE deferred
                """,
                persist=True,
            )
            with db.transaction():
                db.set_root("big-deposit-rule", big_deposit)
            checking = db.get_root("checking")
            big_deposit.subscribe_to(checking)

            with db.transaction():
                checking.deposit(700.0)     # deferred rule runs at commit
            assert big_deposit.hits == 1
            db.commit()  # persist the hits counter update

            # A salary-guard rule that aborts violating transactions.
            fred, mike = db.get_root("fred"), db.get_root("mike")
            guard = system.create_rule(
                "SalaryGuard",
                Primitive("end Employee::set_salary(float salary)"),
                condition=lambda ctx: ctx.source.manager is not None
                and ctx.source.salary >= ctx.source.manager.salary,
                action=lambda ctx: ctx.abort("salary above manager"),
            )
            guard.subscribe_to(fred)

            with db.transaction():
                fred.set_salary(60_000.0)   # fine
            with pytest.raises(TransactionAborted):
                with db.transaction():
                    fred.set_salary(95_000.0)
            assert fred.salary == 60_000.0  # rolled back

            # Persist a composite event for the next session.
            dep_wit = Sequence(
                Primitive("end Account::deposit(float x)"),
                Primitive("before Account::withdraw(float x)"),
                name="DepWit",
            )
            system.persist(dep_wit)
            with db.transaction():
                db.set_root("dep-wit", dep_wit)
            system.close()

    # ------------------------------------------------------------------
    def _session_crash(self, path):
        """Commit work, then 'crash' without checkpointing."""
        db = Database(path, sync=False)
        checking = db.get_root("checking")
        with db.transaction():
            checking.deposit(42.0)
            db.get_root("audit").append("pre-crash deposit")
        # Crash: flush data, keep WAL, skip checkpoint/meta.
        db._pool.flush_all()
        db._wal.flush(force_sync=True)
        db._wal._file.close()
        db._closed = True

    # ------------------------------------------------------------------
    def _session_recover_and_continue(self, path):
        system = Sentinel(path=path, adopt_class_rules=False)
        with system:
            db = system.db
            # Recovery replayed the pre-crash transaction.
            audit = db.get_root("audit")
            assert audit.entries == ["pre-crash deposit"]
            checking = db.get_root("checking")
            assert checking.balance == pytest.approx(1_000.0 + 700.0 + 42.0)

            # The stored rule reloads with its state and keeps working.
            rule = db.get_root("big-deposit-rule")
            assert rule.name == "BigDeposit"
            assert rule.hits == 1
            rule.bind_scheduler(system.scheduler)
            rule.subscribe_to(checking)
            with db.transaction():
                checking.deposit(900.0)
            assert rule.hits == 2

            # The stored composite event reloads and detects.
            dep_wit = db.get_root("dep-wit")
            signals = []

            class Listener:
                def on_event(self, event, occurrence):
                    signals.append(occurrence)

            dep_wit.add_listener(Listener())
            checking.subscribe(dep_wit)
            checking.deposit(10.0)
            checking.withdraw(5.0)
            assert len(signals) == 1

            # Garbage collection keeps everything reachable.
            db.commit()
            marked, swept = db.collect_garbage()
            assert swept == 0
            assert db.get_root("fred").salary == 60_000.0
            system.close()
