"""Property-based tests: event trees round-trip through the DSL."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Conjunction, Disjunction, Primitive, Sequence, parse_event
from repro.core.events.base import Event

_classes = st.sampled_from(["Employee", "Manager", "Stock", "Account"])
_methods = st.sampled_from(["poke", "update_value", "refresh", "tick"])
_modifiers = st.sampled_from(["begin", "end"])


@st.composite
def primitives(draw):
    modifier = draw(_modifiers)
    cls = draw(_classes)
    method = draw(_methods)
    return Primitive(f"{modifier} {cls}::{method}()")


def _binary(children):
    return st.one_of(
        st.builds(lambda a, b: Conjunction(a, b), children, children),
        st.builds(lambda a, b: Disjunction(a, b), children, children),
        st.builds(lambda a, b: Sequence(a, b), children, children),
    )


event_trees = st.recursive(primitives(), _binary, max_leaves=8)


def structurally_equal(left: Event, right: Event) -> bool:
    if type(left) is not type(right):
        return False
    if isinstance(left, Primitive):
        return left.signature == right.signature  # type: ignore[attr-defined]
    left_children = left.children()
    right_children = right.children()
    if len(left_children) != len(right_children):
        return False
    return all(
        structurally_equal(a, b)
        for a, b in zip(left_children, right_children)
    )


@given(event_trees)
@settings(max_examples=150, deadline=None)
def test_expression_roundtrip(tree):
    """to_expression() re-parses to a structurally identical tree."""
    text = tree.to_expression()
    reparsed = parse_event(text)
    assert structurally_equal(tree, reparsed), text


@given(event_trees)
@settings(max_examples=100, deadline=None)
def test_roundtrip_preserves_leaves(tree):
    text = tree.to_expression()
    reparsed = parse_event(text)
    original_leaves = sorted(
        str(leaf.signature) for leaf in tree.leaves()
    )
    reparsed_leaves = sorted(
        str(leaf.signature) for leaf in reparsed.leaves()
    )
    assert original_leaves == reparsed_leaves
