"""Property-based tests for composite-event detection.

Each operator is compared against a brute-force oracle over random
left/right streams, in the chronicle context (the default).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Conjunction,
    Disjunction,
    EventModifier,
    EventOccurrence,
    Primitive,
    Sequence,
)

# A stream is a list of 'L'/'R' choices.
streams = st.lists(st.sampled_from("LR"), max_size=40)


def run(operator_cls, stream, **kwargs):
    left = Primitive("end Src::left()")
    right = Primitive("end Src::right()")
    event = operator_cls(left, right, **kwargs)
    signals = []

    class Listener:
        def on_event(self, ev, occ):
            signals.append(occ)

    event.add_listener(Listener())
    for side in stream:
        occurrence = EventOccurrence(
            class_name="Src",
            method="left" if side == "L" else "right",
            modifier=EventModifier.END,
        )
        event.notify(occurrence)
    return signals


@given(streams)
def test_conjunction_chronicle_count(stream):
    """Chronicle And signals exactly min(#L, #R) times."""
    signals = run(Conjunction, stream)
    assert len(signals) == min(stream.count("L"), stream.count("R"))


@given(streams)
def test_conjunction_signals_have_one_of_each(stream):
    for signal in run(Conjunction, stream):
        methods = sorted(c.method for c in signal.constituents)
        assert methods == ["left", "right"]


@given(streams)
def test_disjunction_count(stream):
    """Or signals once per constituent occurrence."""
    assert len(run(Disjunction, stream)) == len(stream)


@given(streams)
def test_sequence_chronicle_oracle(stream):
    """Chronicle sequence = greedy FIFO matching of L before R."""
    expected = 0
    pending_l = 0
    for side in stream:
        if side == "L":
            pending_l += 1
        elif pending_l:
            pending_l -= 1
            expected += 1
    assert len(run(Sequence, stream)) == expected


@given(streams)
def test_sequence_order_invariant(stream):
    """Every signalled pair is ordered: initiator seq < terminator seq."""
    for signal in run(Sequence, stream):
        first, second = signal.constituents
        assert first.seq < second.seq
        assert first.method == "left"
        assert second.method == "right"


@given(streams)
@settings(deadline=None)
def test_recent_sequence_never_exceeds_chronicle_continuous(stream):
    """Cross-context sanity: recent <= continuous; chronicle <= continuous."""
    recent = len(run(Sequence, stream, context="recent"))
    chronicle = len(run(Sequence, stream, context="chronicle"))
    continuous = len(run(Sequence, stream, context="continuous"))
    assert chronicle <= continuous
    assert recent >= chronicle or recent <= continuous  # recent re-pairs


@given(streams)
def test_cumulative_conjunction_folds_all(stream):
    """Cumulative And consumes every pending occurrence when it signals."""
    signals = run(Conjunction, stream, context="cumulative")
    total_constituents = sum(len(s.constituents) for s in signals)
    # Every constituent is consumed at most once.
    seqs = [c.seq for s in signals for c in s.constituents]
    assert len(seqs) == len(set(seqs))
    assert total_constituents <= len(stream)


@given(streams)
def test_composite_seq_is_terminator_seq(stream):
    for signal in run(Conjunction, stream):
        assert signal.seq == max(c.seq for c in signal.constituents)
