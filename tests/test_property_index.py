"""Property-based tests: B-tree invariants against a dict/list oracle."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.oodb.index import BTree

keys = st.integers(min_value=-50, max_value=50)
values = st.integers(min_value=0, max_value=10_000)


@given(st.lists(st.tuples(keys, values)))
def test_search_matches_oracle(pairs):
    tree = BTree(order=3)
    oracle: dict[int, list[int]] = defaultdict(list)
    for key, value in pairs:
        tree.insert(key, value)
        oracle[key].append(value)
    for key in range(-50, 51):
        assert tree.search(key) == oracle.get(key, [])
    tree.check_invariants()


@given(st.lists(st.tuples(keys, values)), keys, keys)
def test_range_matches_oracle(pairs, low, high):
    if low > high:
        low, high = high, low
    tree = BTree(order=4)
    oracle = []
    for key, value in pairs:
        tree.insert(key, value)
        oracle.append((key, value))
    expected = sorted(
        [(k, v) for k, v in oracle if low <= k <= high],
        key=lambda kv: kv[0],
    )
    got = list(tree.range(low, high))
    assert sorted(got) == sorted(expected)
    assert [k for k, _v in got] == [k for k, _v in expected]


@given(st.lists(st.tuples(keys, values), max_size=200), st.randoms())
@settings(max_examples=50, deadline=None)
def test_insert_delete_roundtrip(pairs, rng):
    tree = BTree(order=2)
    for key, value in pairs:
        tree.insert(key, value)
    shuffled = list(pairs)
    rng.shuffle(shuffled)
    for key, value in shuffled:
        assert tree.delete(key, value)
        tree.check_invariants()
    assert len(tree) == 0


class BTreeMachine(RuleBasedStateMachine):
    """Stateful comparison of the B-tree against a dict-of-lists oracle."""

    def __init__(self):
        super().__init__()
        self.tree = BTree(order=2)
        self.oracle: dict[int, list[int]] = defaultdict(list)

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.oracle[key].append(value)

    @rule(key=keys)
    def delete_key(self, key):
        expected = key in self.oracle and bool(self.oracle[key])
        assert self.tree.delete(key) == expected
        self.oracle.pop(key, None)

    @rule(key=keys)
    def search(self, key):
        assert self.tree.search(key) == self.oracle.get(key, [])

    @invariant()
    def invariants_hold(self):
        self.tree.check_invariants()
        assert len(self.tree) == sum(len(v) for v in self.oracle.values())


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(max_examples=30, deadline=None)
