"""Property-based tests for transaction atomicity and serializer totality."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.oodb import Database, Persistent


class Cell(Persistent):
    def __init__(self, value=0):
        super().__init__()
        self.value = value


# JSON-ish nested values the serializer must round-trip exactly.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
nested = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
        st.tuples(inner, inner),
    ),
    max_leaves=15,
)


@given(nested)
@settings(max_examples=100, deadline=None)
def test_serializer_value_roundtrip(value):
    db = Database()
    try:
        encoded = db.serializer.encode_value(value)
        assert db.serializer.decode_value(encoded) == value
    finally:
        db.close()


# A random program: a list of (op, cell_index, value, commit?) steps.
ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "create", "delete"]),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=-100, max_value=100),
        st.booleans(),
    ),
    max_size=25,
)


@given(ops)
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_aborted_transactions_leave_no_trace(program):
    """Run each step inside a txn; aborted steps must change nothing."""
    db = Database()
    try:
        cells = []
        committed_state: dict[int, int] = {}
        for op, index, value, commit in program:
            txn = db.begin()
            try:
                if op == "create":
                    cell = Cell(value)
                    db.add(cell)
                    cells.append(cell)
                    if commit:
                        committed_state[len(cells) - 1] = value
                elif op == "set" and cells:
                    target = index % len(cells)
                    if cells[target].is_persistent:
                        cells[target].value = value
                        if commit:
                            committed_state[target] = value
                elif op == "delete" and cells:
                    target = index % len(cells)
                    if cells[target].is_persistent:
                        db.delete(cells[target])
                        if commit:
                            committed_state.pop(target, None)
                if commit:
                    db.txn_manager.commit(txn)
                else:
                    db.txn_manager.rollback(txn)
            except Exception:
                db.txn_manager.rollback(txn)
                raise
        # The observable state equals exactly the committed effects.
        for index, expected in committed_state.items():
            assert cells[index].is_persistent
            assert cells[index].value == expected
        live = {i for i, c in enumerate(cells) if c.is_persistent}
        assert live == set(committed_state)
    finally:
        db.close()


@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=20))
@settings(max_examples=30, deadline=None)
def test_commit_abort_alternation_on_disk(tmp_path_factory, values):
    """Even-indexed updates commit, odd-indexed abort; disk state follows."""
    path = tmp_path_factory.mktemp("prop") / "db"
    db = Database(str(path), sync=False)
    try:
        cell = Cell(0)
        db.add(cell)
        db.commit()
        expected = 0
        for i, value in enumerate(values):
            if i % 2 == 0:
                with db.transaction():
                    cell.value = value
                expected = value
            else:
                try:
                    with db.transaction():
                        cell.value = value
                        raise RuntimeError
                except RuntimeError:
                    pass
            assert cell.value == expected
    finally:
        db.close()
    reopened = Database(str(path), sync=False)
    try:
        assert reopened.fetch(cell.oid).value == expected
    finally:
        reopened.close()
