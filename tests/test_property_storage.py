"""Property-based tests for the storage layer (pages and heap files)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.oodb.buffer import BufferPool
from repro.oodb.storage.heap import HeapFile
from repro.oodb.storage.pages import MAX_RECORD_SIZE, Page

payloads = st.binary(min_size=0, max_size=300)


@given(st.lists(payloads, max_size=12))
def test_page_roundtrip_any_payloads(records):
    page = Page(0)
    stored = []
    for payload in records:
        if page.fits(payload):
            stored.append((page.insert(payload), payload))
    restored = Page.from_bytes(page.to_bytes())
    for slot, payload in stored:
        assert restored.read(slot) == payload


@given(st.lists(st.tuples(payloads, st.booleans()), max_size=15))
def test_page_insert_delete_consistency(steps):
    page = Page(0)
    live: dict[int, bytes] = {}
    for payload, delete_one in steps:
        if delete_one and live:
            slot = next(iter(live))
            page.delete(slot)
            del live[slot]
        elif page.fits(payload):
            live[page.insert(payload)] = payload
    assert page.live_count == len(live)
    assert dict(page.records()) == live


@given(st.integers(min_value=0, max_value=MAX_RECORD_SIZE))
def test_page_accepts_any_legal_size(size):
    page = Page(0)
    slot = page.insert(b"z" * size)
    assert len(page.read(slot)) == size


class HeapMachine(RuleBasedStateMachine):
    """Random insert/update/delete/reopen against a dict oracle."""

    def __init__(self):
        super().__init__()
        import tempfile

        self._dir = tempfile.mkdtemp(prefix="heap-prop-")
        self._path = f"{self._dir}/h.heap"
        self.heap = HeapFile(self._path, BufferPool(capacity=4))
        self.oracle: dict = {}

    def teardown(self):
        import shutil

        self.heap.close()
        shutil.rmtree(self._dir, ignore_errors=True)

    @rule(payload=st.binary(min_size=1, max_size=500))
    def insert(self, payload):
        rid = self.heap.insert(payload)
        assert rid not in self.oracle
        self.oracle[rid] = payload

    @precondition(lambda self: self.oracle)
    @rule(payload=st.binary(min_size=1, max_size=500), data=st.data())
    def update(self, payload, data):
        rid = data.draw(st.sampled_from(sorted(self.oracle)))
        new_rid = self.heap.update(rid, payload)
        del self.oracle[rid]
        self.oracle[new_rid] = payload

    @precondition(lambda self: self.oracle)
    @rule(data=st.data())
    def delete(self, data):
        rid = data.draw(st.sampled_from(sorted(self.oracle)))
        assert self.heap.delete(rid) == self.oracle.pop(rid)

    @rule()
    def reopen(self):
        self.heap.close()
        self.heap = HeapFile(self._path, BufferPool(capacity=4))

    @invariant()
    def contents_match_oracle(self):
        assert dict(self.heap.scan()) == self.oracle


TestHeapStateful = HeapMachine.TestCase
TestHeapStateful.settings = settings(
    max_examples=20,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
