"""Public-API contract: everything advertised in ``__all__`` exists.

A guard against docs/code drift: every name each package exports must be
importable and be a class, function, or documented constant.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.events",
    "repro.oodb",
    "repro.oodb.storage",
    "repro.baselines",
    "repro.workloads",
    "repro.tools",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} has no __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_classes_documented(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        obj = getattr(package, name)
        if isinstance(obj, type):
            assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


def test_top_level_surface_is_usable():
    """The README quickstart names must all come from `repro` directly."""
    import repro

    for name in (
        "Sentinel",
        "Reactive",
        "Notifiable",
        "event_method",
        "class_rule",
        "monitor",
        "Rule",
        "Primitive",
        "Conjunction",
        "Disjunction",
        "Sequence",
        "Database",
        "Persistent",
        "TransactionAborted",
    ):
        assert hasattr(repro, name)


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
