"""The rule-server front end: HTTP round trips, errors, server-side rules.

A real ``RuleServer`` on an ephemeral port, a real ``RuleClient`` over
HTTP — no mocked sockets.  Covers the JSON protocol surface (create /
get / update / query / count / invoke / delete / ping / stats), the
error mapping (404 / 400 / 409), class-level ECA rules firing on the
serving thread for client-caused events, and concurrent clients writing
through one server.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import Sentinel, class_rule, event_method
from repro.core.reactive import Reactive
from repro.oodb import Database
from repro.oodb.schema import ClassRegistry
from repro.server import RuleClient, RuleServer, ServerError

registry = ClassRegistry()
RESTOCKS: list = []


class Item(Reactive, registry=registry):
    __rules__ = [
        class_rule(
            "restock-log",
            on="end restock(int amount)",
            action=lambda ctx: RESTOCKS.append(ctx.param("amount")),
        ),
    ]

    def __init__(self, name: str = "", qty: int = 0) -> None:
        super().__init__()
        self.name = name
        self.qty = qty

    @event_method
    def restock(self, amount: int = 1) -> int:
        self.qty += amount
        return self.qty

    def _secret(self) -> str:  # pragma: no cover - must not be callable
        return "hidden"


@pytest.fixture
def served(tmp_path):
    RESTOCKS.clear()
    db = Database(str(tmp_path / "db"), registry=registry, locking=True)
    system = Sentinel(db=db, adopt_class_rules=False)
    with system:
        with RuleServer(system) as server:
            yield system, RuleClient(server.url)
    system.close()


class TestRoundTrip:
    def test_ping_reports_classes(self, served):
        _system, client = served
        pong = client.ping()
        assert pong["ok"] is True
        assert "Item" in pong["classes"]

    def test_create_get_update_delete(self, served):
        _system, client = served
        oid = client.create("Item", name="widget", qty=3)
        assert isinstance(oid, int)

        record = client.get(oid)
        assert record["class"] == "Item"
        assert record["attrs"]["name"] == "widget"
        assert record["attrs"]["qty"] == 3

        client.update(oid, qty=10)
        assert client.get(oid)["attrs"]["qty"] == 10

        client.delete(oid)
        with pytest.raises(ServerError) as err:
            client.get(oid)
        assert err.value.status == 404

    def test_query_and_count(self, served):
        _system, client = served
        for i in range(6):
            client.create("Item", name=f"item-{i}", qty=i)
        assert client.count("Item") == 6
        assert client.count("Item", where=[["qty", ">=", 3]]) == 3
        rows = client.query("Item", where=[["qty", "<", 2]])
        assert sorted(r["attrs"]["qty"] for r in rows) == [0, 1]
        limited = client.query("Item", limit=2)
        assert len(limited) == 2

    def test_invoke_returns_value_and_fires_rule(self, served):
        _system, client = served
        oid = client.create("Item", name="widget", qty=1)
        result = client.invoke(oid, "restock", 5)
        assert result == 6
        assert client.get(oid)["attrs"]["qty"] == 6
        # The class-level ECA rule ran server-side for a client event.
        assert RESTOCKS == [5]

    def test_stats_surface(self, served):
        _system, client = served
        client.create("Item", name="x")
        stats = client.stats()
        assert stats["requests"] >= 1
        assert "triggered" in stats["scheduler"]
        assert stats["worker_pool"] is None


class TestErrorMapping:
    def test_unknown_class_is_400(self, served):
        _system, client = served
        with pytest.raises(ServerError) as err:
            client.create("Ghost")
        assert err.value.status == 400

    def test_unknown_oid_is_404(self, served):
        _system, client = served
        with pytest.raises(ServerError) as err:
            client.get(999_999)
        assert err.value.status == 404

    def test_private_attr_and_method_are_400(self, served):
        _system, client = served
        oid = client.create("Item", name="widget")
        with pytest.raises(ServerError) as err:
            client.update(oid, _p_oid=1)
        assert err.value.status == 400
        with pytest.raises(ServerError) as err:
            client.invoke(oid, "_secret")
        assert err.value.status == 400

    def test_bad_where_op_is_400(self, served):
        _system, client = served
        with pytest.raises(ServerError) as err:
            client.query("Item", where=[["qty", "~=", 1]])
        assert err.value.status == 400

    def test_bad_constructor_args_are_400(self, served):
        _system, client = served
        with pytest.raises(ServerError) as err:
            client.create("Item", bogus_kwarg=1)
        assert err.value.status == 400


class TestConcurrentClients:
    def test_parallel_writers_through_one_server(self, served):
        _system, client = served
        oids = [client.create("Item", name=f"c{i}", qty=0) for i in range(4)]
        per_client = 12
        errors: list[BaseException] = []

        def hammer(idx: int) -> None:
            own = RuleClient(client.url)
            try:
                for _ in range(per_client):
                    own.invoke(oids[idx], "restock", 1)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        for oid in oids:
            assert client.get(oid)["attrs"]["qty"] == per_client
        assert len(RESTOCKS) == 4 * per_client
