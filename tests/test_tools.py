"""Tests for the database inspection and trace-rendering tools."""

import json

import pytest

from repro.core import Sentinel
from repro.obs.tracer import Span
from repro.oodb import Database, Persistent
from repro.tools import summarize
from repro.tools.inspect import dump_object, main, storage_stats
from repro.tools.trace import main as trace_main
from repro.workloads import Account


class Widget(Persistent):
    def __init__(self, size=1):
        super().__init__()
        self.size = size


@pytest.fixture
def populated(tmp_path):
    path = str(tmp_path / "db")
    system = Sentinel(path=path, adopt_class_rules=False)
    with system:
        db = system.db
        with db.transaction():
            widget = Widget(5)
            db.add(widget)
            db.add(Widget(7))
            db.set_root("main-widget", widget)
        db.create_index(Widget, "size")
        rule = system.rule_from_spec(
            "RULE Stored\nON end Account::deposit(float amount)",
            persist=True,
        )
        account = Account("X", 0.0)
        account.subscribe(rule)
        account.deposit(5.0)
        db.commit()
        system.close()
    return path


class TestSummarize:
    def test_counts_and_classes(self, populated):
        summary = summarize(populated)
        assert summary.classes["Widget"] == 2
        assert summary.object_count >= 3  # widgets + root map + rule bits

    def test_roots_listed(self, populated):
        summary = summarize(populated)
        assert "main-widget" in summary.roots
        assert "Widget" in summary.roots["main-widget"]

    def test_indexes_listed(self, populated):
        summary = summarize(populated)
        assert "btree:Widget.size" in summary.indexes

    def test_stored_rules_described(self, populated):
        summary = summarize(populated)
        names = [r["name"] for r in summary.rules]
        assert "Stored" in names
        stored = next(r for r in summary.rules if r["name"] == "Stored")
        assert stored["coupling"] == "immediate"
        assert stored["triggered"] == 1

    def test_render_plain_and_detailed(self, populated):
        summary = summarize(populated)
        plain = summary.render()
        detailed = summary.render(show_rules=True)
        assert "objects:" in plain
        assert "Stored" in detailed
        assert len(detailed) >= len(plain)


class TestDumpObject:
    def test_dump_existing(self, populated):
        summary = summarize(populated)
        # find the widget oid from the root listing: "Widget @<n>"
        oid_value = int(summary.roots["main-widget"].split("@")[1])
        text = dump_object(populated, oid_value)
        assert "class=Widget" in text
        assert "size = 5" in text

    def test_dump_missing(self, populated):
        assert "no object" in dump_object(populated, 99_999)


class TestCli:
    def test_main_summary(self, populated, capsys):
        assert main([populated]) == 0
        out = capsys.readouterr().out
        assert "database:" in out and "Widget" in out

    def test_main_rules_flag(self, populated, capsys):
        assert main([populated, "--rules"]) == 0
        assert "Stored" in capsys.readouterr().out

    def test_main_oid_flag(self, populated, capsys):
        summary = summarize(populated)
        oid_value = int(summary.roots["main-widget"].split("@")[1])
        assert main([populated, "--oid", str(oid_value)]) == 0
        assert "class=Widget" in capsys.readouterr().out


class TestStorageStats:
    def test_reports_heap_and_indexes(self, populated):
        text = storage_stats(populated)
        assert "heap:" in text and "% utilized" in text
        assert "Widget.size" in text
        # Clean close checkpointed, so the WAL is empty.
        assert "wal: 0 records" in text

    def test_counts_wal_records_by_type(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        with db.transaction():
            db.add(Widget(1))
        # Leave the WAL un-checkpointed: stats must see the commit batch.
        db._wal.close()
        db._pool.flush_all()
        text = storage_stats(path)
        assert "begin        1" in text
        assert "commit       1" in text
        assert "update       1" in text

    def test_main_stats_flag(self, populated, capsys):
        assert main([populated, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "heap:" in out and "indexes:" in out


@pytest.fixture
def trace_file(tmp_path):
    """A small hand-built JSONL trace: method → occurrence → rule chain."""
    spans = [
        Span(1, None, "method", "Employee.set_salary", 0.0, 50.0,
             {"class": "Employee", "oid": 7}),
        Span(2, 1, "occurrence", "end Employee::set_salary", 1.0, 40.0,
             {"seq": 3, "class": "Employee", "oid": 7}),
        Span(3, 2, "schedule", "SalaryCheck", 2.0, 0.0,
             {"rule": "SalaryCheck", "coupling": "immediate", "seq": 3}),
        Span(4, 2, "rule", "SalaryCheck", 3.0, 30.0,
             {"rule": "SalaryCheck", "coupling": "immediate", "seq": 3}),
        Span(5, 4, "condition", "SalaryCheck", 4.0, 5.0,
             {"rule": "SalaryCheck", "seq": 3, "passed": True}),
        Span(6, 4, "action", "SalaryCheck", 10.0, 15.0,
             {"rule": "SalaryCheck", "seq": 3}),
        Span(7, 4, "outcome", "SalaryCheck", 26.0, 0.0,
             {"rule": "SalaryCheck", "fired": True, "seq": 3}),
    ]
    path = tmp_path / "spans.jsonl"
    path.write_text(
        "".join(json.dumps(s.to_json()) + "\n" for s in spans)
    )
    return str(path)


class TestTraceCli:
    def test_renders_tree(self, trace_file, capsys):
        assert trace_main([trace_file]) == 0
        out = capsys.readouterr().out
        # Children indent under parents.
        assert "method     Employee.set_salary" in out
        assert "  occurrence" in out
        assert "    rule" in out
        assert "      condition" in out

    def test_filter_by_rule(self, trace_file, capsys):
        assert trace_main([trace_file, "--rule", "SalaryCheck"]) == 0
        out = capsys.readouterr().out
        assert "SalaryCheck" in out
        assert "Employee.set_salary" not in out

    def test_filter_by_class_and_kind(self, trace_file, capsys):
        assert trace_main([trace_file, "--class", "Employee",
                           "--kind", "method"]) == 0
        out = capsys.readouterr().out
        assert "Employee.set_salary" in out
        assert "occurrence" not in out

    def test_filter_by_oid(self, trace_file, capsys):
        assert trace_main([trace_file, "--oid", "7"]) == 0
        assert "Employee" in capsys.readouterr().out
        assert trace_main([trace_file, "--oid", "99"]) == 0
        assert "no spans match" in capsys.readouterr().out

    def test_explain_rule(self, trace_file, capsys):
        assert trace_main([trace_file, "--explain", "SalaryCheck"]) == 0
        out = capsys.readouterr().out
        assert "rule SalaryCheck" in out
        assert "scheduled: 1 (immediate: 1)" in out
        assert "fired:     1" in out
        assert "condition: 1/1 passed" in out

    def test_explain_unknown_rule(self, trace_file, capsys):
        assert trace_main([trace_file, "--explain", "Nope"]) == 0
        assert "no trace spans" in capsys.readouterr().out

    def test_missing_file_errors(self, tmp_path, capsys):
        assert trace_main([str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestReadOnlyWalStats:
    def test_wal_stats_do_not_modify_the_log(self, tmp_path):
        from repro.tools.inspect import _wal_stats

        path = str(tmp_path / "db")
        db = Database(path)
        with db.transaction():
            db.add(Widget(1))
        db._wal.close()
        db._pool.flush_all()
        wal_path = tmp_path / "db" / "wal.log"
        before = wal_path.read_bytes()
        lines = _wal_stats(path)
        assert any("3 records" in line for line in lines)
        assert wal_path.read_bytes() == before  # read-only, no recovery

    def test_stats_warn_when_open_ran_recovery(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        db = Database(path)
        with db.transaction():
            db.add(Widget(1))
        # Simulate a crash: committed work left in the WAL, no checkpoint.
        db._wal.close()
        db._pool.flush_all()
        text = storage_stats(path)
        assert "begin        1" in text  # counts read before recovery
        assert "warning:" in text
        assert "restart recovery" in text

    def test_no_warning_on_clean_database(self, populated):
        assert "warning:" not in storage_stats(populated)


@pytest.fixture
def audit_file(tmp_path):
    """A small audit trail with mixed rules, outcomes, and timestamps."""
    from repro.obs.audit import AuditLog

    path = str(tmp_path / "audit.jsonl")
    log = AuditLog()
    log.open(path)
    log.record("guard", seq=1, coupling="immediate", condition=True,
               outcome="fired", latency_us=10.0)
    log.record("flaky", seq=2, coupling="immediate", condition=True,
               outcome="error", error="ValueError('x')", latency_us=55.0)
    log.record("picky", seq=3, coupling="deferred", condition=False,
               outcome="rejected", latency_us=2.0)
    log.record("guard", seq=4, coupling="immediate", condition=True,
               outcome="fired", latency_us=14.0)
    log.close()
    return path


class TestAuditCli:
    def test_lists_all_entries(self, audit_file, capsys):
        from repro.tools.audit import main as audit_main

        assert audit_main([audit_file]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 4
        assert "guard" in out and "flaky" in out and "picky" in out

    def test_filter_by_rule(self, audit_file, capsys):
        from repro.tools.audit import main as audit_main

        assert audit_main([audit_file, "--rule", "guard"]) == 0
        out = capsys.readouterr().out
        assert out.count("guard") == 2
        assert "flaky" not in out

    def test_filter_by_outcome(self, audit_file, capsys):
        from repro.tools.audit import main as audit_main

        assert audit_main([audit_file, "--outcome", "error"]) == 0
        out = capsys.readouterr().out
        assert "flaky" in out and "ValueError" in out
        assert "guard" not in out

    def test_tail(self, audit_file, capsys):
        from repro.tools.audit import main as audit_main

        assert audit_main([audit_file, "--tail", "1"]) == 0
        out = capsys.readouterr().out
        assert "seq=4" in out
        assert "seq=1" not in out

    def test_time_filters(self, audit_file, capsys):
        from repro.tools.audit import main as audit_main

        assert audit_main([audit_file, "--since", "0"]) == 0
        assert readouterr_count(capsys) == 4
        assert audit_main([audit_file, "--until", "1"]) == 0
        assert "no entries" in capsys.readouterr().out

    def test_summary(self, audit_file, capsys):
        from repro.tools.audit import main as audit_main

        assert audit_main([audit_file, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "rule" in out.splitlines()[0]
        guard_line = next(line for line in out.splitlines()
                          if line.startswith("guard"))
        fields = guard_line.split()
        assert fields[1] == "2"  # total
        assert fields[2] == "2"  # fired
        assert "12.0" in guard_line  # mean latency of 10 and 14

    def test_parse_when_accepts_iso(self):
        from repro.tools.audit import parse_when

        assert parse_when("1000.5") == 1000.5
        assert parse_when("2026-08-05T12:00:00") > 0


def readouterr_count(capsys) -> int:
    return capsys.readouterr().out.count("\n")


class TestTopCli:
    def test_render_totals_then_rates(self):
        from repro.tools.top import render_top

        first = {
            "rule_firings{rule=guard,outcome=fired}": 10,
            "rule_us": {"count": 10, "p50": 5.0, "p95": 9.0, "p99": 9.9},
        }
        second = {
            "rule_firings{rule=guard,outcome=fired}": 30,
            "rule_us": {"count": 30, "p50": 5.0, "p95": 9.0, "p99": 9.9},
        }
        totals = render_top(first)
        assert "total" in totals
        assert "guard" in totals and "10" in totals
        rates = render_top(second, first, elapsed=2.0)
        assert "Δ/s" in rates
        assert "10.0" in rates  # (30 - 10) / 2s
        assert "p50" in rates and "5.0" in rates

    def test_first_frame_is_labeled_rate_frame_is_not(self):
        from repro.tools.top import render_top

        snapshot = {"rule_firings{rule=guard,outcome=fired}": 10}
        totals = render_top(snapshot)
        # Satellite: the first frame says what its numbers are instead
        # of silently printing totals where rates will appear later.
        assert "first frame" in totals
        assert "total" in totals
        rates = render_top(snapshot, snapshot, elapsed=2.0)
        assert "first frame" not in rates
        assert "Δ/s" in rates

    def test_zero_elapsed_refetch_stays_in_totals_mode(self):
        from repro.tools.top import render_top

        snapshot = {"rule_firings{rule=guard,outcome=fired}": 10}
        frame = render_top(snapshot, snapshot, elapsed=0.0)
        assert "first frame" in frame  # can't rate over zero seconds

    def test_sparkline_scales_per_row(self):
        from repro.tools.top import sparkline

        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(100)))) == 12  # window clamp

    def test_trends_accumulate_into_render(self):
        from repro.tools.top import render_top, update_trends

        first = {"rule_firings{rule=guard,outcome=fired}": 0}
        second = {"rule_firings{rule=guard,outcome=fired}": 20}
        trends = {}
        update_trends(trends, first, None, 0.0)
        update_trends(trends, second, first, 2.0)
        assert list(trends[("rule", "guard", "fired")]) == [10.0]
        frame = render_top(second, first, elapsed=2.0, trends=trends)
        assert "▁" in frame  # the trend column rendered blocks

    def test_render_empty_snapshot(self):
        from repro.tools.top import render_top

        frame = render_top({})
        assert "no rule firings" in frame
        assert "no latency histograms" in frame

    def test_main_polls_a_live_exporter(self, capsys):
        from repro.obs.exporter import ObservabilityServer
        from repro.obs.metrics import MetricsRegistry
        from repro.tools.top import main as top_main

        registry = MetricsRegistry()
        registry.counter("rule_firings{rule=guard,outcome=fired}").inc(3)
        registry.histogram("rule_us").record(7.0)
        with ObservabilityServer(registry=registry) as server:
            assert top_main([server.url, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "guard" in out
        assert "rule_us" in out


class TestTopUnreachable:
    def test_once_exits_nonzero_with_notice(self, capsys):
        from repro.tools.top import main as top_main

        # Port 9 (discard) on localhost: nothing listens there in CI.
        assert top_main(["http://127.0.0.1:9", "--once"]) == 1
        err = capsys.readouterr().err
        assert "exporter unreachable" in err
        assert err.count("\n") == 1  # one-line notice, not a traceback

    def test_once_renders_one_frame_when_up(self, capsys):
        from repro.obs.exporter import ObservabilityServer
        from repro.obs.metrics import MetricsRegistry
        from repro.tools.top import main as top_main

        registry = MetricsRegistry()
        registry.counter("rule_firings{rule=guard,outcome=fired}").inc(1)
        with ObservabilityServer(registry=registry) as server:
            assert top_main([server.url, "--once"]) == 0
        assert "guard" in capsys.readouterr().out


def _recorded_store(path: str, frames: int = 5):
    """A telemetry store with a few recorded scrapes of top's inputs."""
    import time

    from repro.obs.tsdb import TimeSeriesStore

    store = TimeSeriesStore(path)
    base = time.time() - 100.0  # recent: compact must not age it out
    for i in range(frames):
        store.append(
            {
                "rule_firings{rule=guard,outcome=fired}": float(i * 10),
                "rule_us.count": float(i * 10),
                "rule_us.p50": 5.0,
                "rule_us.p95": 9.0 + i,
                "rule_us.p99": 9.9,
            },
            ts=base + i * 5,
        )
    store.close()
    return base


class TestTopHistory:
    def test_replay_renders_final_frame_with_rates(self, capsys, tmp_path):
        from repro.tools.top import main as top_main

        directory = str(tmp_path / "tsdb")
        _recorded_store(directory)
        assert top_main(["--history", directory]) == 0
        out = capsys.readouterr().out
        assert "history replay: 5 frames" in out
        assert "guard" in out
        assert "Δ/s" in out  # final frame rates against the one before
        assert "2.0" in out  # 10 firings / 5s between scrapes
        assert "rule_us" in out  # flattened sub-series folded back

    def test_window_limits_the_replay(self, capsys, tmp_path):
        from repro.tools.top import main as top_main, replay_frames

        directory = str(tmp_path / "tsdb")
        _recorded_store(directory)  # frames at +0, +5, +10, +15, +20
        assert len(replay_frames(directory, window_s=11.0)) == 3
        assert top_main(["--history", directory, "--window", "11"]) == 0
        assert "history replay: 3 frames" in capsys.readouterr().out

    def test_empty_store_exits_nonzero(self, capsys, tmp_path):
        from repro.tools.top import main as top_main

        assert top_main(["--history", str(tmp_path / "empty")]) == 1
        assert "no recorded scrapes" in capsys.readouterr().err

    def test_url_required_without_history(self):
        from repro.tools.top import main as top_main

        with pytest.raises(SystemExit):
            top_main([])


class TestTsdbCli:
    @pytest.fixture
    def recorded(self, tmp_path):
        directory = str(tmp_path / "tsdb")
        _recorded_store(directory)
        return directory

    def test_info(self, capsys, recorded):
        from repro.tools.tsdb import main as tsdb_main

        assert tsdb_main(["info", recorded]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "frames" in out

    def test_info_json(self, capsys, recorded):
        from repro.tools.tsdb import main as tsdb_main

        assert tsdb_main(["info", recorded, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["frames"] == 5
        [segment] = payload["segments"]
        assert segment["torn_bytes"] == 0

    def test_series(self, capsys, recorded):
        from repro.tools.tsdb import main as tsdb_main

        assert tsdb_main(["series", recorded]) == 0
        assert "rule_us.p95" in capsys.readouterr().out

    def test_dump_with_pattern(self, capsys, recorded):
        from repro.tools.tsdb import main as tsdb_main

        assert tsdb_main(["dump", recorded, "--series", "rule_us.p9*"]) == 0
        out = capsys.readouterr().out
        assert "rule_us.p95" in out
        assert "rule_us.p99" in out
        assert "rule_firings" not in out

    def test_dump_no_match_exits_nonzero(self, capsys, recorded):
        from repro.tools.tsdb import main as tsdb_main

        assert tsdb_main(["dump", recorded, "--series", "nope*"]) == 1
        assert "no series match" in capsys.readouterr().err

    def test_compact(self, capsys, recorded):
        from repro.tools.tsdb import main as tsdb_main

        assert tsdb_main(["compact", recorded, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["segments_after"] == 1
        assert tsdb_main(["info", recorded, "--json"]) == 0


class TestAuditTailRotation:
    @pytest.fixture
    def rotated_audit(self, tmp_path):
        """An audit trail whose entries span several rotated generations."""
        from repro.obs.audit import AuditLog

        path = str(tmp_path / "audit.jsonl")
        log = AuditLog()
        log.open(path, max_bytes=300, keep=5)
        for seq in range(1, 13):
            log.record("spin", seq=seq, coupling="immediate", condition=True,
                       outcome="fired", latency_us=float(seq))
        log.close()
        return path

    def test_tail_spans_rotation_boundary(self, rotated_audit, capsys):
        import os

        from repro.tools.audit import main as audit_main

        assert os.path.exists(rotated_audit + ".1")  # rotation happened
        assert audit_main([rotated_audit, "--tail", "6"]) == 0
        out = capsys.readouterr().out
        seqs = [int(line.split("seq=")[1].split()[0])
                for line in out.strip().splitlines()]
        assert seqs == [7, 8, 9, 10, 11, 12]

    def test_tail_no_rotated_restricts_to_active_file(
        self, rotated_audit, capsys
    ):
        from repro.obs.audit import read_entries
        from repro.tools.audit import main as audit_main

        active_only = list(read_entries(rotated_audit, include_rotated=False))
        assert audit_main(
            [rotated_audit, "--tail", "6", "--no-rotated"]
        ) == 0
        out = capsys.readouterr().out
        if active_only:
            shown = [int(line.split("seq=")[1].split()[0])
                     for line in out.strip().splitlines()]
            assert shown == [e["seq"] for e in active_only[-6:]]
        else:
            assert "no entries" in out

    def test_filtered_tail_still_spans_generations(
        self, rotated_audit, capsys
    ):
        from repro.tools.audit import main as audit_main

        assert audit_main(
            [rotated_audit, "--rule", "spin", "--tail", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "seq=5" in out and "seq=12" in out
        assert "seq=4" not in out

    def test_tail_entries_reads_newest_generations_lazily(self, rotated_audit):
        from repro.obs.audit import tail_entries

        newest = tail_entries(rotated_audit, 3)
        assert [e["seq"] for e in newest] == [10, 11, 12]
        everything = tail_entries(rotated_audit, 10_000)
        assert [e["seq"] for e in everything] == list(range(1, 13))
        assert tail_entries(rotated_audit, 0) == []


class PackedPart(Persistent):
    """Packed-only class: every attribute covered by the struct schema."""

    _p_schema = [("size", "int"), ("grade", "float")]

    def __init__(self, size=0, grade=0.0):
        super().__init__()
        self.size = size
        self.grade = grade


class TestStorageStatsEdgeCases:
    def test_empty_database(self, tmp_path, capsys):
        path = str(tmp_path / "empty")
        Database(path).close()
        assert main([path, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "heap: 0 pages, 0 records" in out
        assert "indexes: 0" in out
        assert "record formats: 0 classes" in out
        assert "read path:" in out

    def test_packed_only_database(self, tmp_path, capsys):
        path = str(tmp_path / "packed")
        db = Database(path)
        with db.transaction():
            for i in range(10):
                db.add(PackedPart(i, i / 2))
        db.close()
        assert main([path, "--stats"]) == 0
        out = capsys.readouterr().out
        formats = next(line for line in out.splitlines()
                       if line.strip().startswith("PackedPart"))
        assert "10 packed / 0 json" in formats
        assert "saved vs json" in formats
