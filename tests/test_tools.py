"""Tests for the database inspection tool."""

import pytest

from repro.core import Sentinel
from repro.oodb import Database, Persistent
from repro.tools import summarize
from repro.tools.inspect import dump_object, main
from repro.workloads import Account


class Widget(Persistent):
    def __init__(self, size=1):
        super().__init__()
        self.size = size


@pytest.fixture
def populated(tmp_path):
    path = str(tmp_path / "db")
    system = Sentinel(path=path, adopt_class_rules=False)
    with system:
        db = system.db
        with db.transaction():
            widget = Widget(5)
            db.add(widget)
            db.add(Widget(7))
            db.set_root("main-widget", widget)
        db.create_index(Widget, "size")
        rule = system.rule_from_spec(
            "RULE Stored\nON end Account::deposit(float amount)",
            persist=True,
        )
        account = Account("X", 0.0)
        account.subscribe(rule)
        account.deposit(5.0)
        db.commit()
        system.close()
    return path


class TestSummarize:
    def test_counts_and_classes(self, populated):
        summary = summarize(populated)
        assert summary.classes["Widget"] == 2
        assert summary.object_count >= 3  # widgets + root map + rule bits

    def test_roots_listed(self, populated):
        summary = summarize(populated)
        assert "main-widget" in summary.roots
        assert "Widget" in summary.roots["main-widget"]

    def test_indexes_listed(self, populated):
        summary = summarize(populated)
        assert "Widget.size" in summary.indexes

    def test_stored_rules_described(self, populated):
        summary = summarize(populated)
        names = [r["name"] for r in summary.rules]
        assert "Stored" in names
        stored = next(r for r in summary.rules if r["name"] == "Stored")
        assert stored["coupling"] == "immediate"
        assert stored["triggered"] == 1

    def test_render_plain_and_detailed(self, populated):
        summary = summarize(populated)
        plain = summary.render()
        detailed = summary.render(show_rules=True)
        assert "objects:" in plain
        assert "Stored" in detailed
        assert len(detailed) >= len(plain)


class TestDumpObject:
    def test_dump_existing(self, populated):
        summary = summarize(populated)
        # find the widget oid from the root listing: "Widget @<n>"
        oid_value = int(summary.roots["main-widget"].split("@")[1])
        text = dump_object(populated, oid_value)
        assert "class=Widget" in text
        assert "size = 5" in text

    def test_dump_missing(self, populated):
        assert "no object" in dump_object(populated, 99_999)


class TestCli:
    def test_main_summary(self, populated, capsys):
        assert main([populated]) == 0
        out = capsys.readouterr().out
        assert "database:" in out and "Widget" in out

    def test_main_rules_flag(self, populated, capsys):
        assert main([populated, "--rules"]) == 0
        assert "Stored" in capsys.readouterr().out

    def test_main_oid_flag(self, populated, capsys):
        summary = summarize(populated)
        oid_value = int(summary.roots["main-widget"].split("@")[1])
        assert main([populated, "--oid", str(oid_value)]) == 0
        assert "class=Widget" in capsys.readouterr().out
