"""The tools.doctor diagnostics bundle: collection, schema, CLI."""

import json

import pytest

from repro.core import Sentinel
from repro.obs.flight import flight_recorder
from repro.obs.metrics import metrics
from repro.obs.slowlog import slow_op_log
from repro.oodb import Persistent
from repro.tools.doctor import (
    BUNDLE_SCHEMA,
    collect,
    main,
    render_markdown,
    validate_bundle,
    write_bundle,
)


class Gear(Persistent):
    def __init__(self, teeth=0):
        super().__init__()
        self.teeth = teeth


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    slow_op_log.close()
    slow_op_log.reset_thresholds()
    flight_recorder.clear()
    flight_recorder.configure(capacity=512, dump_dir="", enabled=True)
    metrics.reset()


@pytest.fixture
def system(tmp_path):
    sentinel = Sentinel(path=str(tmp_path / "db"), adopt_class_rules=False)
    with sentinel, sentinel.transaction():
        for i in range(20):
            sentinel.db.add(Gear(i))
    yield sentinel
    sentinel.close()


DEMO_MODULE = """\
import time

from repro.core import Sentinel
from repro.oodb import Persistent


class Part(Persistent):
    def __init__(self, n=0):
        super().__init__()
        self.n = n


def build_system():
    s = Sentinel(path={db_path!r}, adopt_class_rules=False)
    with s, s.transaction():
        for i in range(30):
            s.db.add(Part(i))
    return s


def exercise(s):
    s.enable_slow_log({slow_path!r}, slow_query_us=0.0)
    list(s.db.query(Part).where_op("n", ">", 10))
    rule = s.create_rule(
        name="doc_boom", event="end Part::shred()",
        action=lambda ctx: 1 / 0,
    )
"""


@pytest.fixture
def demo_target(tmp_path):
    target = tmp_path / "demo_app.py"
    target.write_text(
        DEMO_MODULE.format(
            db_path=str(tmp_path / "demodb"),
            slow_path=str(tmp_path / "slow.jsonl"),
        )
    )
    return str(target)


class TestCollect:
    def test_bundle_has_every_schema_key(self, system):
        bundle = collect(system, target="t")
        validate_bundle(bundle)  # must not raise
        assert set(BUNDLE_SCHEMA) <= set(bundle)

    def test_health_reuses_healthz_checks(self, system):
        bundle = collect(system)
        assert bundle["health"]["status"] == "ok"
        checks = bundle["health"]["checks"]
        assert checks["wal_writable"]["ok"]
        assert "wal.log" in checks["wal_writable"]["detail"]

    def test_flight_and_slow_ops_sections(self, system, tmp_path):
        system.enable_slow_log(
            str(tmp_path / "slow.jsonl"), slow_query_us=0.0
        )
        list(system.db.query(Gear).where_op("teeth", ">", 5))
        bundle = collect(system)
        assert bundle["flight"]["enabled"]
        kinds = {e["kind"] for e in bundle["flight"]["entries"]}
        assert "query" in kinds
        assert bundle["slow_ops"]["enabled"]
        assert bundle["slow_ops"]["thresholds"]["slow_query_us"] == 0.0
        slow_kinds = {e["kind"] for e in bundle["slow_ops"]["entries"]}
        assert "query" in slow_kinds

    def test_storage_section_uses_live_database(self, system):
        bundle = collect(system)
        assert any(line.startswith("heap:") for line in bundle["storage"])
        assert any("Gear" in line for line in bundle["storage"])

    def test_no_database_system(self):
        sentinel = Sentinel(adopt_class_rules=False)
        bundle = collect(sentinel)
        validate_bundle(bundle)
        assert bundle["storage"] == ["no database attached"]

    def test_bundle_is_json_serializable(self, system):
        json.dumps(collect(system, target="t"))

    def test_telemetry_disabled_by_default(self, system):
        bundle = collect(system)
        assert bundle["telemetry"] == {"enabled": False}

    def test_telemetry_section_and_jsonl(self, system, tmp_path):
        from repro.obs.tsdb import telemetry

        system.enable_telemetry(
            str(tmp_path / "tsdb"), interval=60.0, start=False
        )
        try:
            assert telemetry.collector.scrape_once()
            metrics.counter("events.raised").inc(5)
            assert telemetry.collector.scrape_once()
            bundle = collect(system)
            section = bundle["telemetry"]
            assert section["enabled"]
            assert section["scrapes"] == 2
            assert "events.raised" in section["samples"]
            assert "## Telemetry" in render_markdown(bundle)
            out = tmp_path / "bundle"
            written = write_bundle(bundle, str(out))
            assert any(p.endswith("telemetry.jsonl") for p in written)
        finally:
            telemetry.close()


class TestLocks:
    def test_section_without_database(self):
        sentinel = Sentinel(adopt_class_rules=False)
        bundle = collect(sentinel)
        assert bundle["locks"] == {"enabled": False}
        assert "- no database attached" in render_markdown(bundle)

    def test_counts_and_lockdep_disabled_note(self, system):
        bundle = collect(system)
        locks = bundle["locks"]
        assert locks["enabled"] is False  # db exists, locking off
        assert locks["held_locks"] == 0
        assert locks["waiting_edges"] == {}
        assert locks["lockdep"] == {"enabled": False}
        assert "lock-order sanitizer not attached" in render_markdown(bundle)

    def test_lockdep_section_with_recent_inversions(self, tmp_path):
        from repro.oodb import Database, Persistent
        from repro.oodb.schema import ClassRegistry

        registry = ClassRegistry()

        class Cog(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.n = 0

        class Axle(Persistent, registry=registry):
            def __init__(self) -> None:
                super().__init__()
                self.n = 0

        db = Database(
            str(tmp_path / "lockdb"), registry=registry, locking=True
        )
        sentinel = Sentinel(db=db, adopt_class_rules=False)
        try:
            with sentinel, sentinel.transaction():
                oid_c = db.add(Cog())
                oid_a = db.add(Axle())
            sentinel.enable_lockdep()
            with db.transaction():
                db.fetch(oid_c).n += 1
                db.fetch(oid_a).n += 1
            with db.transaction():
                db.fetch(oid_a).n += 1
                db.fetch(oid_c).n += 1
            bundle = collect(sentinel)
            validate_bundle(bundle)
            lockdep = bundle["locks"]["lockdep"]
            assert lockdep["enabled"] is True
            assert lockdep["order_edges"] == 2
            assert lockdep["inversions"] == 1
            assert len(lockdep["recent_inversions"]) == 1
            text = render_markdown(bundle)
            assert "## Locks" in text
            assert "1 inversion(s) reported" in text
            assert "<->" in text
        finally:
            sentinel.close()

    def test_validate_flags_bad_locks_section(self, system):
        bundle = collect(system)
        bundle["locks"]["lockdep"] = "nope"
        with pytest.raises(ValueError, match="locks.lockdep"):
            validate_bundle(bundle)
        bundle = collect(system)
        bundle["locks"].pop("enabled")
        with pytest.raises(ValueError, match="locks missing 'enabled'"):
            validate_bundle(bundle)


class TestValidate:
    def test_missing_key_reported(self, system):
        bundle = collect(system)
        del bundle["flight"]
        with pytest.raises(ValueError, match="missing key 'flight'"):
            validate_bundle(bundle)

    def test_wrong_type_reported(self, system):
        bundle = collect(system)
        bundle["storage"] = "not a list"
        with pytest.raises(ValueError, match="'storage' should be list"):
            validate_bundle(bundle)

    def test_bad_health_status_reported(self, system):
        bundle = collect(system)
        bundle["health"]["status"] = "meh"
        with pytest.raises(ValueError, match="health.status invalid"):
            validate_bundle(bundle)

    def test_all_problems_reported_at_once(self, system):
        bundle = collect(system)
        del bundle["analysis"]
        bundle["metrics"] = 7
        with pytest.raises(ValueError) as excinfo:
            validate_bundle(bundle)
        message = str(excinfo.value)
        assert "analysis" in message and "metrics" in message


class TestRender:
    def test_markdown_sections(self, system):
        text = render_markdown(collect(system, target="app.py"))
        assert "# Sentinel doctor — app.py" in text
        assert "## Health checks" in text
        assert "## Flight recorder" in text
        assert "## Slow operations" in text
        assert "## Storage" in text
        assert "## Rule-set analysis" in text

    def test_write_bundle_directory(self, system, tmp_path):
        out = tmp_path / "bundle"
        written = write_bundle(collect(system), str(out))
        names = {p.rsplit("/", 1)[-1] for p in written}
        assert names == {
            "doctor.json", "doctor.md", "flight.jsonl", "slow_ops.jsonl"
        }
        reloaded = json.load(open(out / "doctor.json"))
        validate_bundle(reloaded)


class TestCli:
    def test_directory_bundle_with_induced_slow_query_and_rule_error(
        self, demo_target, tmp_path, capsys
    ):
        out_dir = tmp_path / "bundle"
        assert main([demo_target, "--out", str(out_dir)]) == 0
        bundle = json.load(open(out_dir / "doctor.json"))
        validate_bundle(bundle)
        # The induced slow query is in the slow-op tail, plan attached.
        slow = bundle["slow_ops"]["entries"]
        assert any(
            e["kind"] == "query" and e["plan"]["actual"]["returned"] == 19
            for e in slow
        )
        # The flight recorder saw the workload.
        assert any(
            e["kind"] == "query" for e in bundle["flight"]["entries"]
        )

    def test_single_json_with_embedded_markdown(
        self, demo_target, tmp_path, capsys
    ):
        out = tmp_path / "doctor.json"
        assert main([demo_target, "--json", str(out)]) == 0
        bundle = json.load(open(out))
        assert bundle["summary_markdown"].startswith("# Sentinel doctor")

    def test_stdout_markdown_by_default(self, demo_target, capsys):
        assert main([demo_target, "--no-exercise"]) == 0
        assert capsys.readouterr().out.startswith("# Sentinel doctor")

    def test_bad_target_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.py"
        empty.write_text("")
        assert main([str(empty)]) == 2
        assert "build_system" in capsys.readouterr().err

    def test_exercise_error_is_survivable(self, tmp_path, capsys):
        target = tmp_path / "raiser.py"
        target.write_text(
            "from repro.core import Sentinel\n"
            "def build_system():\n"
            "    return Sentinel(adopt_class_rules=False)\n"
            "def exercise(s):\n"
            "    raise RuntimeError('induced')\n"
        )
        assert main([str(target)]) == 0
        captured = capsys.readouterr()
        assert "exercise() raised" in captured.err
        assert captured.out.startswith("# Sentinel doctor")
