"""Tests for the example domain classes."""

import pytest

from repro.workloads import (
    Account,
    Employee,
    FinancialInfo,
    Manager,
    Patient,
    Person,
    Physician,
    Portfolio,
    Stock,
)
from repro.workloads.domains import InsufficientFunds


class TestStockAndMarket:
    def test_price_update(self):
        stock = Stock("IBM", 100.0)
        stock.set_price(120.0)
        assert stock.get_price() == 120.0

    def test_financial_info_change_percent(self):
        dow = FinancialInfo("DJ", 10_000.0)
        dow.set_value(10_500.0)
        assert dow.change == pytest.approx(5.0)
        dow.set_value(10_395.0)
        assert dow.change == pytest.approx(-1.0)

    def test_change_from_zero(self):
        info = FinancialInfo("Z", 0.0)
        info.set_value(10.0)
        assert info.change == 0.0


class TestPortfolio:
    def test_purchase_and_sell(self):
        portfolio = Portfolio("P", cash=1_000.0)
        portfolio.purchase("IBM", 5, 100.0)
        assert portfolio.cash == 500.0
        assert portfolio.holdings == {"IBM": 5}
        portfolio.sell("IBM", 2, 110.0)
        assert portfolio.cash == 720.0
        assert portfolio.holdings == {"IBM": 3}
        assert len(portfolio.trades) == 2

    def test_oversell_rejected(self):
        portfolio = Portfolio("P")
        with pytest.raises(ValueError):
            portfolio.sell("IBM", 1, 10.0)


class TestPayroll:
    def test_manager_reports(self):
        mike = Manager("Mike", 100.0)
        fred = Employee("Fred", 50.0)
        mike.add_report(fred)
        assert fred.manager is mike
        assert mike.salary_greater_than_all_reports()
        fred.set_salary(200.0)
        assert not mike.salary_greater_than_all_reports()

    def test_change_salary_is_delta(self):
        fred = Employee("Fred", 50.0)
        fred.change_salary(10.0)
        assert fred.salary == 60.0

    def test_manager_is_employee(self):
        assert isinstance(Manager("M", 1.0), Employee)

    def test_get_name_is_passive(self):
        from repro.core import event_generators

        assert "get_name" not in event_generators(Employee)


class TestAccount:
    def test_deposit_withdraw(self):
        account = Account("A", 100.0)
        assert account.deposit(50.0) == 150.0
        assert account.withdraw(30.0) == 120.0

    def test_overdraft_rejected(self):
        account = Account("A", 10.0)
        with pytest.raises(InsufficientFunds):
            account.withdraw(100.0)
        assert account.balance == 10.0

    def test_nonpositive_amounts_rejected(self):
        account = Account("A", 10.0)
        with pytest.raises(ValueError):
            account.deposit(0)
        with pytest.raises(ValueError):
            account.withdraw(-5)


class TestClinic:
    def test_patient_vitals(self):
        patient = Patient("p")
        patient.record_temperature(39.5)
        patient.record_heart_rate(120)
        patient.diagnose("flu")
        patient.prescribe("rest")
        assert patient.temperature == 39.5
        assert patient.heart_rate == 120
        assert patient.condition == "flu"
        assert patient.medications == ["rest"]

    def test_physician_alerts(self):
        physician = Physician("d")
        physician.alert("check patient 3")
        assert physician.alerts == ["check patient 3"]


class TestMarriage:
    def test_marriage_links_both(self):
        alice, bob = Person("Alice", "F"), Person("Bob", "M")
        alice.marry(bob)
        assert alice.spouse is bob and bob.spouse is alice
