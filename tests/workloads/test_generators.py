"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.workloads import (
    EventStreamGenerator,
    make_employees,
    make_stocks,
    uniform_updates,
)


class TestPopulations:
    def test_make_stocks_deterministic(self):
        first = make_stocks(10, seed=3)
        second = make_stocks(10, seed=3)
        assert [s.price for s in first] == [s.price for s in second]
        assert [s.symbol for s in first] == [f"SYM{i:04d}" for i in range(10)]

    def test_make_employees_attaches_managers(self):
        employees, managers = make_employees(10, managers=2)
        assert len(employees) == 10 and len(managers) == 2
        assert all(e.manager in managers for e in employees)
        assert len(managers[0].reports) == 5

    def test_make_employees_no_managers(self):
        employees, managers = make_employees(3)
        assert managers == []
        assert all(e.manager is None for e in employees)


class TestUniformUpdates:
    def test_applies_count(self):
        stocks = make_stocks(5)
        calls = []
        applied = uniform_updates(
            stocks, 20, lambda obj, rng: calls.append(obj)
        )
        assert applied == 20
        assert len(calls) == 20
        assert all(c in stocks for c in calls)

    def test_deterministic_choice(self):
        stocks = make_stocks(5)
        first, second = [], []
        uniform_updates(stocks, 10, lambda o, r: first.append(o.symbol), seed=1)
        uniform_updates(stocks, 10, lambda o, r: second.append(o.symbol), seed=1)
        assert first == second


class TestEventStreamGenerator:
    def make(self, **kwargs):
        return EventStreamGenerator(
            population=4,
            methods={
                "set_price": lambda rng: (round(rng.uniform(1, 100), 2),),
                "get_price": lambda rng: (),
            },
            **kwargs,
        )

    def test_items_reproducible(self):
        generator = self.make(seed=5)
        first = [(i.index, i.method, i.args) for i in generator.items(50)]
        second = [(i.index, i.method, i.args) for i in generator.items(50)]
        assert first == second

    def test_weights_respected(self):
        generator = self.make(weights={"set_price": 1.0, "get_price": 0.0})
        assert all(i.method == "set_price" for i in generator.items(100))

    def test_replay_invokes_methods(self):
        from repro.workloads import Stock

        stocks = [Stock(f"S{i}", 1.0) for i in range(4)]
        generator = self.make(weights={"set_price": 1.0, "get_price": 0.0})
        applied = generator.replay(stocks, 30)
        assert applied == 30
        assert any(s.price != 1.0 for s in stocks)

    def test_validation(self):
        with pytest.raises(ValueError):
            EventStreamGenerator(population=0, methods={"m": lambda r: ()})
        with pytest.raises(ValueError):
            EventStreamGenerator(population=1, methods={})
